// Tests for the packed-panel layouts: every packing routine is checked
// against the layout definition (sliver s, element [k*nr + j] =
// op(B)(k, s*nr + j), zero past the edge) on exact and edge widths.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/pack.h"

namespace shalom::pack {
namespace {

template <typename T>
T b_op(const Matrix<T>& b, Trans t, index_t k, index_t j) {
  return t == Trans::N ? b(k, j) : b(j, k);
}

class PackBSweep : public ::testing::TestWithParam<
                       std::tuple<index_t, index_t, int, Trans>> {};

TEST_P(PackBSweep, LayoutMatchesDefinition) {
  const auto [kc, n, nr, trans] = GetParam();
  Matrix<float> b(trans == Trans::N ? kc : n, trans == Trans::N ? n : kc);
  fill_random(b, 7);

  std::vector<float> bc(b_panel_elems(kc, n, nr), -1.f);
  if (trans == Trans::N) {
    pack_b_n(b.data(), b.ld(), kc, n, nr, bc.data());
  } else {
    pack_b_t(b.data(), b.ld(), kc, n, nr, bc.data());
  }

  const index_t slivers = (n + nr - 1) / nr;
  for (index_t s = 0; s < slivers; ++s) {
    const float* sliver = bc.data() + s * b_sliver_elems(kc, nr);
    for (index_t k = 0; k < kc; ++k) {
      for (int j = 0; j < nr; ++j) {
        const index_t col = s * nr + j;
        const float expected =
            col < n ? b_op(b, trans, k, col) : 0.f;  // zero padding
        ASSERT_EQ(sliver[k * nr + j], expected)
            << "sliver " << s << " k " << k << " j " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, PackBSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 5, 16, 33),
                       ::testing::Values<index_t>(1, 11, 12, 13, 24, 40),
                       ::testing::Values(4, 12),
                       ::testing::Values(Trans::N, Trans::T)));

class PackASweep : public ::testing::TestWithParam<
                       std::tuple<index_t, index_t, int, Trans>> {};

TEST_P(PackASweep, LayoutMatchesDefinition) {
  const auto [m, kc, mr, trans] = GetParam();
  Matrix<float> a(trans == Trans::N ? m : kc, trans == Trans::N ? kc : m);
  fill_random(a, 13);

  std::vector<float> ac(a_panel_elems(m, kc, mr), -1.f);
  if (trans == Trans::N) {
    pack_a_n(a.data(), a.ld(), m, kc, mr, ac.data());
  } else {
    pack_a_t(a.data(), a.ld(), m, kc, mr, ac.data());
  }

  const index_t slivers = (m + mr - 1) / mr;
  for (index_t s = 0; s < slivers; ++s) {
    const float* sliver = ac.data() + s * a_sliver_elems(kc, mr);
    for (index_t k = 0; k < kc; ++k) {
      for (int i = 0; i < mr; ++i) {
        const index_t row = s * mr + i;
        const float expected =
            row < m ? (trans == Trans::N ? a(row, k) : a(k, row)) : 0.f;
        ASSERT_EQ(sliver[k * mr + i], expected)
            << "sliver " << s << " k " << k << " i " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Heights, PackASweep,
    ::testing::Combine(::testing::Values<index_t>(1, 6, 7, 8, 20),
                       ::testing::Values<index_t>(1, 9, 32),
                       ::testing::Values(7, 8),
                       ::testing::Values(Trans::N, Trans::T)));

TEST(PackSizes, ElementCounts) {
  EXPECT_EQ(b_sliver_elems(10, 12), 120);
  EXPECT_EQ(b_panel_elems(10, 25, 12), 3 * 120);  // ceil(25/12) = 3
  EXPECT_EQ(a_sliver_elems(10, 7), 70);
  EXPECT_EQ(a_panel_elems(15, 10, 7), 3 * 70);  // ceil(15/7) = 3
}

TEST(PackDouble, WorksForFp64) {
  const index_t kc = 9, n = 14;
  const int nr = 6;
  Matrix<double> b(kc, n);
  fill_random(b, 3);
  std::vector<double> bc(b_panel_elems(kc, n, nr));
  pack_b_n(b.data(), b.ld(), kc, n, nr, bc.data());
  EXPECT_EQ(bc[0], b(0, 0));
  EXPECT_EQ(bc[1 * nr + 2], b(1, 2));
  // Second sliver, padded region.
  const double* s2 = bc.data() + 2 * b_sliver_elems(kc, nr);
  EXPECT_EQ(s2[0 * nr + 1], b(0, 13));
  EXPECT_EQ(s2[0 * nr + 2], 0.0);
}

}  // namespace
}  // namespace shalom::pack
