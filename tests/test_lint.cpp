// Golden tests for tools/shalom_lint: each fixture under
// tests/lint_fixtures/ seeds exactly one rule's violation(s), and the
// analyzer must report the exact rule ID on the exact line - plus stay
// silent on the real library sources and on the suppressed fixture.
//
// The binary location and fixture paths are injected by the build
// (SHALOM_LINT_* compile definitions in tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout only
};

LintRun run_lint(const std::string& args) {
  LintRun r;
  const std::string cmd =
      std::string(SHALOM_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) r.output.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const char* name) {
  return std::string(SHALOM_LINT_FIXTURES) + "/" + name;
}

std::string design_flag() {
  return std::string("--design=") + SHALOM_LINT_DESIGN;
}

int count_lines(const std::string& s) {
  int n = 0;
  for (char c : s)
    if (c == '\n') ++n;
  return n;
}

/// Expects a text-format finding `<file>:<line>: [<rule>]` in the output.
void expect_finding(const LintRun& r, const std::string& file, int line,
                    const std::string& rule) {
  const std::string needle =
      file + ":" + std::to_string(line) + ": [" + rule + "]";
  EXPECT_NE(r.output.find(needle), std::string::npos)
      << "expected finding '" << needle << "' in output:\n"
      << r.output;
}

TEST(Lint, LibrarySourcesAreClean) {
  const LintRun r = run_lint(design_flag() + " " + SHALOM_LINT_SRC + " " +
                             SHALOM_LINT_BENCH);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "");
}

TEST(Lint, AtomicMemoryOrderFixture) {
  const std::string f = fixture("atomic_memory_order.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 4, "atomic-memory-order");
}

TEST(Lint, RawAllocFixture) {
  const std::string f = fixture("raw_alloc.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 4, "raw-alloc");  // std::malloc
  expect_finding(r, f, 5, "raw-alloc");  // new float[n]
}

TEST(Lint, EnvAccessFixture) {
  const std::string f = fixture("env_access.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 4, "env-access");
}

TEST(Lint, FaultSiteFixture) {
  const std::string f = fixture("fault_site.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 4, "fault-site-documented");
  EXPECT_NE(r.output.find("bogus.site"), std::string::npos) << r.output;
}

TEST(Lint, NondeterminismFixture) {
  const std::string f = fixture("nondeterminism.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 5, "nondeterminism");  // std::rand()
  expect_finding(r, f, 6, "nondeterminism");  // std::time(nullptr)
}

TEST(Lint, CapiBoundaryFixture) {
  const std::string f = fixture("capi_boundary.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 2, "capi-exception-boundary");
  EXPECT_NE(r.output.find("shalom_fixture_entry"), std::string::npos)
      << r.output;
}

TEST(Lint, SignalHandlerFixture) {
  const std::string f = fixture("signal_handler.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 7, "signal-handler-safety");  // std::fprintf
  expect_finding(r, f, 8, "signal-handler-safety");  // new int(sig)
  EXPECT_NE(r.output.find("fixture_handler"), std::string::npos) << r.output;
}

TEST(Lint, UnboundedWaitFixture) {
  const std::string f = fixture("unbounded_wait.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 7, "unbounded-wait");  // bare done_cv.wait(lock)
  EXPECT_NE(r.output.find("done_cv"), std::string::npos) << r.output;
}

TEST(Lint, UncheckedIoFixture) {
  const std::string f = fixture("unchecked_io.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 3) << r.output;
  expect_finding(r, f, 5, "unchecked-io");  // bare std::fwrite statement
  expect_finding(r, f, 6, "unchecked-io");  // bare std::fclose statement
  expect_finding(r, f, 7, "unchecked-io");  // if-body std::rename discard
}

TEST(Lint, SuppressionCommentSilencesFinding) {
  const std::string f = fixture("suppressed.cpp");
  const LintRun r = run_lint(design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "");
}

TEST(Lint, WholeFixtureDirectoryFindingCount) {
  // 1 atomic + 2 raw-alloc + 1 env + 1 fault-site + 2 nondeterminism +
  // 1 capi + 2 signal-handler + 1 unbounded-wait + 3 unchecked-io +
  // 0 suppressed = 14 findings.
  const LintRun r =
      run_lint(design_flag() + " " + std::string(SHALOM_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 14) << r.output;
}

TEST(Lint, JsonFormatCarriesRuleAndLine) {
  const std::string f = fixture("atomic_memory_order.cpp");
  const LintRun r = run_lint("--format=json " + design_flag() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"rule\": \"atomic-memory-order\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"line\": 4"), std::string::npos) << r.output;
}

TEST(Lint, ListRulesNamesEveryRule) {
  const LintRun r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"atomic-memory-order", "raw-alloc", "env-access",
        "fault-site-documented", "nondeterminism",
        "capi-exception-boundary", "signal-handler-safety",
        "unbounded-wait", "unchecked-io"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

TEST(Lint, NoInputsIsUsageError) {
  const LintRun r = run_lint("");
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
