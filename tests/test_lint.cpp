// Golden tests for tools/shalom_lint: each fixture under
// tests/lint_fixtures/ seeds exactly one rule's violation(s), and the
// analyzer must report the exact rule ID on the exact line - plus stay
// silent on the real library sources and on the suppressed fixture.
//
// The whole-program families (lock-order, atomic-pairing,
// registry-drift) compare the scanned code against external artifacts;
// fixture runs point those at the fake docs checked in next to the
// fixtures (drift_design.md, drift_api.md, drift_tests/, drift_tier1.sh)
// so expectations never chase the real documentation.
//
// The binary location and artifact paths are injected by the build
// (SHALOM_LINT_* compile definitions in tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_cmd(const std::string& cmd) {
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) r.output.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Runs the analyzer capturing stdout (findings); stderr is dropped.
LintRun run_lint(const std::string& args) {
  return run_cmd(std::string(SHALOM_LINT_BIN) + " " + args + " 2>/dev/null");
}

/// Runs the analyzer capturing stderr (the summary line) only.
LintRun run_lint_stderr(const std::string& args) {
  return run_cmd(std::string(SHALOM_LINT_BIN) + " " + args +
                 " 2>&1 1>/dev/null");
}

std::string fixture(const char* name) {
  return std::string(SHALOM_LINT_FIXTURES) + "/" + name;
}

std::string design_flag() {
  return std::string("--design=") + SHALOM_LINT_DESIGN;
}

/// Drift artifacts for fixture runs: the fake docs/tests next to the
/// fixtures, so the registry expectations are self-contained.
std::string drift_fixture_flags() {
  return "--api=" + fixture("drift_api.md") +
         " --tests=" + fixture("drift_tests") +
         " --tier1=" + fixture("drift_tier1.sh");
}

/// Drift artifacts for the real-source run: the actual docs and suites.
std::string drift_real_flags() {
  return std::string("--api=") + SHALOM_LINT_API +
         " --tests=" + SHALOM_LINT_TESTS + " --tier1=" + SHALOM_LINT_TIER1;
}

std::string fixture_flags() {
  return design_flag() + " " + drift_fixture_flags();
}

int count_lines(const std::string& s) {
  int n = 0;
  for (char c : s)
    if (c == '\n') ++n;
  return n;
}

/// Expects a text-format finding `<file>:<line>: [<rule>]` in the output.
void expect_finding(const LintRun& r, const std::string& file, int line,
                    const std::string& rule) {
  const std::string needle =
      file + ":" + std::to_string(line) + ": [" + rule + "]";
  EXPECT_NE(r.output.find(needle), std::string::npos)
      << "expected finding '" << needle << "' in output:\n"
      << r.output;
}

TEST(Lint, LibrarySourcesAreClean) {
  // The full gate scan set - src, bench, and the analyzer's own sources -
  // against the real DESIGN.md/API.md/tests/tier1.sh must be silent.
  const LintRun r =
      run_lint(design_flag() + " " + drift_real_flags() + " " +
               SHALOM_LINT_SRC + " " + SHALOM_LINT_BENCH + " " +
               SHALOM_LINT_TOOLS);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "");
}

TEST(Lint, AtomicMemoryOrderFixture) {
  const std::string f = fixture("atomic_memory_order.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 4, "atomic-memory-order");
}

TEST(Lint, RawAllocFixture) {
  const std::string f = fixture("raw_alloc.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 4, "raw-alloc");  // std::malloc
  expect_finding(r, f, 5, "raw-alloc");  // new float[n]
}

TEST(Lint, EnvAccessFixture) {
  // SHALOM_FIXTURE is listed in drift_api.md and mentioned in the fake
  // test blob, so the only finding is the direct getenv, not an
  // undocumented- or untested-env-key drift.
  const std::string f = fixture("env_access.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 4, "env-access");
}

TEST(Lint, FaultSiteFixture) {
  // The fixture's site_name() definition feeds both families: the site is
  // absent from DESIGN.md (fault-site-documented) and never armed in the
  // fake tests/tier1 (registry-drift).
  const std::string f = fixture("fault_site.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 4, "fault-site-documented");
  expect_finding(r, f, 4, "registry-drift");
  EXPECT_NE(r.output.find("bogus.site"), std::string::npos) << r.output;
}

TEST(Lint, NondeterminismFixture) {
  const std::string f = fixture("nondeterminism.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 5, "nondeterminism");  // std::rand()
  expect_finding(r, f, 6, "nondeterminism");  // std::time(nullptr)
}

TEST(Lint, CapiBoundaryFixture) {
  const std::string f = fixture("capi_boundary.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 2, "capi-exception-boundary");
  EXPECT_NE(r.output.find("shalom_fixture_entry"), std::string::npos)
      << r.output;
}

TEST(Lint, SignalHandlerFixture) {
  const std::string f = fixture("signal_handler.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 7, "signal-handler-safety");  // std::fprintf
  expect_finding(r, f, 8, "signal-handler-safety");  // new int(sig)
  EXPECT_NE(r.output.find("fixture_handler"), std::string::npos) << r.output;
}

TEST(Lint, UnboundedWaitFixture) {
  const std::string f = fixture("unbounded_wait.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 7, "unbounded-wait");  // bare done_cv.wait(lock)
  EXPECT_NE(r.output.find("done_cv"), std::string::npos) << r.output;
}

TEST(Lint, UncheckedIoFixture) {
  const std::string f = fixture("unchecked_io.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 3) << r.output;
  expect_finding(r, f, 5, "unchecked-io");  // bare std::fwrite statement
  expect_finding(r, f, 6, "unchecked-io");  // bare std::fclose statement
  expect_finding(r, f, 7, "unchecked-io");  // if-body std::rename discard
}

TEST(Lint, SuppressionCommentSilencesFinding) {
  const std::string f = fixture("suppressed.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "");
}

TEST(Lint, LockOrderCycleFixtureReportsWitnessPath) {
  // Two TUs acquire fix_mu_a/fix_mu_b in opposite orders: one cycle, one
  // finding, with every edge of the witness path carrying file:line.
  const std::string ab = fixture("lock_order_ab.cpp");
  const std::string ba = fixture("lock_order_ba.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + ab + " " + ba);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, ab, 10, "lock-order");
  EXPECT_NE(r.output.find("fix_mu_a -> fix_mu_b -> fix_mu_a"),
            std::string::npos)
      << r.output;
  // Witness edges: the ab TU acquires b while holding a, the ba TU
  // acquires a while holding b.
  EXPECT_NE(r.output.find(ab + ":10 acquires 'fix_mu_b'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(ba + ":9 acquires 'fix_mu_a'"), std::string::npos)
      << r.output;
  // Either TU alone has no cycle.
  const LintRun solo = run_lint(fixture_flags() + " " + ab);
  EXPECT_EQ(solo.exit_code, 0) << solo.output;
}

TEST(Lint, LockOrderDeclaredHierarchyContradiction) {
  const std::string f = fixture("lock_order_declared.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 1) << r.output;
  expect_finding(r, f, 10, "lock-order");
  EXPECT_NE(
      r.output.find("lock-order(fix_declared_a before fix_declared_b)"),
      std::string::npos)
      << r.output;
}

TEST(Lint, AtomicPairingFixture) {
  // An unpaired release store, an unpaired acquire load, and a correctly
  // paired flag that must stay silent.
  const std::string f = fixture("atomic_unpaired.cpp");
  const LintRun r = run_lint(fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 2) << r.output;
  expect_finding(r, f, 8, "atomic-pairing");  // release store, no reader
  expect_finding(r, f, 9, "atomic-pairing");  // acquire load, no writer
  EXPECT_NE(r.output.find("fix_unpaired_flag"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fix_orphan_reader"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("fix_paired"), std::string::npos) << r.output;
}

TEST(Lint, RegistryDriftFixture) {
  // Against the fake docs: one unarmed site, one missing strerror entry,
  // one missing API row, one missing test mention, an undocumented
  // counter and env key (mentioned in the tests, so single-axis) and an
  // untested counter and env key (documented, so also single-axis) -
  // each finding naming the artifact it drifted from.
  const std::string f = fixture("registry_drift.cpp");
  const LintRun r =
      run_lint("--design=" + fixture("drift_design.md") + " " +
               drift_fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 8) << r.output;
  expect_finding(r, f, 8, "registry-drift");   // drift.orphan_site unarmed
  expect_finding(r, f, 14, "registry-drift");  // no strerror entry
  expect_finding(r, f, 15, "registry-drift");  // no API row
  expect_finding(r, f, 16, "registry-drift");  // no test mention
  expect_finding(r, f, 28, "registry-drift");  // undocumented counter
  expect_finding(r, f, 29, "registry-drift");  // untested counter
  expect_finding(r, f, 32, "registry-drift");  // undocumented env key
  expect_finding(r, f, 33, "registry-drift");  // untested env key
  EXPECT_NE(r.output.find("drift.orphan_site"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("SHALOM_DRIFT_NO_STRERROR"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("drift_orphan_counter"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("drift_untested_counter"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("SHALOM_DRIFT_ORPHAN_KEY"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("SHALOM_DRIFT_UNTESTED_KEY"), std::string::npos)
      << r.output;
  // The armed/documented/tested halves stay silent.
  EXPECT_EQ(r.output.find("drift.armed_site"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("SHALOM_DRIFT_TESTED"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("drift_documented_counter"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("SHALOM_DRIFT_DOCUMENTED_KEY"), std::string::npos)
      << r.output;
}

TEST(Lint, WholeFixtureDirectoryFindingCount) {
  // 1 atomic-memory-order + 2 raw-alloc + 1 env + 2 fault_site (design +
  // arming) + 2 nondeterminism + 1 capi + 2 signal-handler +
  // 1 unbounded-wait + 3 unchecked-io + 0 suppressed + 1 lock-order cycle
  // + 1 declared contradiction + 2 atomic-pairing + 10 registry_drift.cpp
  // (2 sites undocumented in the real DESIGN.md + 8 drift) = 29 findings.
  const LintRun r =
      run_lint(fixture_flags() + " " + std::string(SHALOM_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_lines(r.output), 29) << r.output;
}

TEST(Lint, JsonFormatCarriesRuleAndLine) {
  const std::string f = fixture("atomic_memory_order.cpp");
  const LintRun r = run_lint("--format=json " + fixture_flags() + " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"rule\": \"atomic-memory-order\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"line\": 4"), std::string::npos) << r.output;
}

/// Minimal JSON string unescaper for the round-trip assertion below.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        const unsigned code =
            static_cast<unsigned>(std::strtoul(s.substr(i + 1, 4).c_str(),
                                               nullptr, 16));
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: out += e;
    }
  }
  return out;
}

/// Extracts the raw (still-escaped) JSON string value of `key`.
std::string json_field(const std::string& json, const std::string& key) {
  const std::string marker = "\"" + key + "\": \"";
  const std::size_t at = json.find(marker);
  if (at == std::string::npos) return "";
  std::size_t i = at + marker.size();
  std::string raw;
  while (i < json.size() && json[i] != '"') {
    if (json[i] == '\\' && i + 1 < json.size()) {
      raw += json[i];
      raw += json[i + 1];
      i += 2;
    } else {
      raw += json[i];
      ++i;
    }
  }
  return raw;
}

TEST(Lint, JsonRoundTripsQuotesBackslashesAndControlChars) {
  // --selftest-json emits a synthetic finding whose file and message
  // contain `"`, `\`, tab, newline and a control byte; the JSON output
  // must unescape back to the original bytes.
  const LintRun r = run_cmd(std::string(SHALOM_LINT_BIN) +
                            " --format=json --selftest-json 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(json_unescape(json_field(r.output, "file")),
            "self\"test\\dir/probe\t.cpp")
      << r.output;
  EXPECT_EQ(json_unescape(json_field(r.output, "message")),
            "quote:\" backslash:\\ newline:\n control:\x01 end")
      << r.output;
}

TEST(Lint, SummaryReportsScannedFileCountAndPerRuleTotals) {
  const std::string f = fixture("atomic_memory_order.cpp");
  const LintRun r = run_lint_stderr(fixture_flags() + " " + f);
  EXPECT_NE(r.output.find("scanned 1 file(s)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("atomic-memory-order=1"), std::string::npos)
      << r.output;
}

TEST(Lint, EmptyScanIsAnError) {
  // An input directory containing no scannable file must fail loudly
  // rather than pass as a clean scan.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "shalom_lint_empty_scan")
          .string();
  std::filesystem::create_directories(dir);
  const LintRun r = run_lint(fixture_flags() + " " + dir);
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Lint, ListRulesNamesEveryRule) {
  const LintRun r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"atomic-memory-order", "raw-alloc", "env-access",
        "fault-site-documented", "nondeterminism",
        "capi-exception-boundary", "signal-handler-safety",
        "unbounded-wait", "unchecked-io", "lock-order", "atomic-pairing",
        "registry-drift"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

TEST(Lint, NoInputsIsUsageError) {
  const LintRun r = run_lint("");
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
