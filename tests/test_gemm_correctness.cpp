// Exhaustive GEMM correctness sweeps against the naive oracle: all four
// modes, float and double, alpha/beta combinations, edge sizes around the
// register tile, padded leading dimensions, packing-triggering sizes and
// every feature-flag ablation. These are the tests that pin down the
// drivers end to end.
#include <gtest/gtest.h>

#include "core/shalom.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

using testing::kAllModes;
using testing::Problem;

template <typename T>
void run_and_check(Mode mode, index_t m, index_t n, index_t k, T alpha,
                   T beta, const Config& cfg = {}, index_t pad = 0) {
  Problem<T> p(mode, m, n, k, pad, pad, pad);
  gemm(mode.a, mode.b, m, n, k, alpha, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), beta, p.c.data(), p.c.ld(), cfg);
  p.run_reference(alpha, beta);
  p.expect_matches("gemm");
}

// ---------------------------------------------------------------------------
// Size sweep: every (m, n, k) combination around the tile boundaries.
// ---------------------------------------------------------------------------
class GemmSizeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizeSweep, AllModesF32) {
  const auto [m, n, k] = GetParam();
  for (Mode mode : kAllModes)
    run_and_check<float>(mode, m, n, k, 1.f, 0.f);
}

TEST_P(GemmSizeSweep, NnNtF64) {
  const auto [m, n, k] = GetParam();
  run_and_check<double>({Trans::N, Trans::N}, m, n, k, 1.0, 0.0);
  run_and_check<double>({Trans::N, Trans::T}, m, n, k, 1.0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TileBoundaries, GemmSizeSweep,
    ::testing::Combine(::testing::Values(1, 2, 6, 7, 8, 13, 14, 23),
                       ::testing::Values(1, 3, 11, 12, 13, 24, 30),
                       ::testing::Values(1, 4, 5, 16, 37)));

// ---------------------------------------------------------------------------
// Alpha/beta semantics.
// ---------------------------------------------------------------------------
class GemmAlphaBeta
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GemmAlphaBeta, F32AndF64) {
  const auto [alpha, beta] = GetParam();
  run_and_check<float>({Trans::N, Trans::N}, 19, 26, 31,
                       static_cast<float>(alpha), static_cast<float>(beta));
  run_and_check<double>({Trans::N, Trans::T}, 19, 26, 31, alpha, beta);
}

INSTANTIATE_TEST_SUITE_P(
    Scalars, GemmAlphaBeta,
    ::testing::Combine(::testing::Values(0.0, 1.0, -1.0, 2.5),
                       ::testing::Values(0.0, 1.0, -0.5, 3.0)));

TEST(GemmSemantics, BetaZeroOverwritesNan) {
  Matrix<float> a(4, 4), b(4, 4), c(4, 4);
  fill_random(a, 1);
  fill_random(b, 2);
  c.fill(std::numeric_limits<float>::quiet_NaN());
  gemm(Trans::N, Trans::N, index_t{4}, index_t{4}, index_t{4}, 1.f,
       a.data(), a.ld(), b.data(), b.ld(), 0.f, c.data(), c.ld());
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_FALSE(std::isnan(c(i, j)));
}

TEST(GemmSemantics, AlphaZeroScalesCOnly) {
  Matrix<float> a(4, 4), b(4, 4), c(4, 4);
  fill_random(a, 1);
  fill_random(b, 2);
  c.fill(2.f);
  gemm(Trans::N, Trans::N, index_t{4}, index_t{4}, index_t{4}, 0.f,
       a.data(), a.ld(), b.data(), b.ld(), 0.5f, c.data(), c.ld());
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(c(i, j), 1.f);
}

TEST(GemmSemantics, ZeroDimensionsAreNoOps) {
  Matrix<float> a(4, 4), b(4, 4), c(4, 4);
  c.fill(3.f);
  gemm(Trans::N, Trans::N, index_t{0}, index_t{4}, index_t{4}, 1.f,
       a.data(), a.ld(), b.data(), b.ld(), 0.f, c.data(), c.ld());
  EXPECT_EQ(c(0, 0), 3.f);  // M == 0: C untouched
  gemm(Trans::N, Trans::N, index_t{4}, index_t{4}, index_t{0}, 1.f,
       a.data(), a.ld(), b.data(), b.ld(), 2.f, c.data(), c.ld());
  EXPECT_EQ(c(0, 0), 6.f);  // K == 0: C *= beta
}

TEST(GemmSemantics, RejectsBadArguments) {
  Matrix<float> a(4, 4), b(4, 4), c(4, 4);
  EXPECT_THROW(gemm(Trans::N, Trans::N, index_t{4}, index_t{4}, index_t{4},
                    1.f, a.data(), index_t{2} /* lda < K */, b.data(),
                    b.ld(), 0.f, c.data(), c.ld()),
               invalid_argument);
  EXPECT_THROW(gemm(Trans::N, Trans::N, index_t{-1}, index_t{4}, index_t{4},
                    1.f, a.data(), a.ld(), b.data(), b.ld(), 0.f, c.data(),
                    c.ld()),
               invalid_argument);
}

// ---------------------------------------------------------------------------
// Padded leading dimensions (operands inside larger allocations).
// ---------------------------------------------------------------------------
TEST(GemmLayout, PaddedLeadingDimensions) {
  for (Mode mode : kAllModes)
    run_and_check<float>(mode, 21, 34, 29, 1.5f, -1.f, {}, /*pad=*/5);
}

TEST(GemmLayout, ViewOverload) {
  Problem<float> p({Trans::N, Trans::T}, 15, 22, 18);
  gemm(1.0f, MatrixView<const float>(p.a.view()), Trans::N,
       MatrixView<const float>(p.b.view()), Trans::T, 0.5f, p.c.view());
  p.run_reference(1.0f, 0.5f);
  p.expect_matches("view overload");
}

// ---------------------------------------------------------------------------
// Packing-triggering sizes: B beyond L1 (fused pack), beyond LLC on the
// preset machines (pack-ahead pipeline), and mc-spanning M.
// ---------------------------------------------------------------------------
class GemmPackingPaths : public ::testing::TestWithParam<Mode> {};

TEST_P(GemmPackingPaths, LargeBSmallM) {
  // B ~ 770 KB: packs on every machine; M = 30 < mr * 5.
  run_and_check<float>(GetParam(), 30, 770, 256, 1.f, 0.f);
}

TEST_P(GemmPackingPaths, MultipleKcBlocks) {
  // K spans several kc blocks so the beta-accumulation path runs.
  run_and_check<float>(GetParam(), 25, 130, 1100, 1.f, 2.f);
}

TEST_P(GemmPackingPaths, MSpansMcBlocks) {
  run_and_check<float>(GetParam(), 600, 140, 96, 1.f, 0.f);
}

INSTANTIATE_TEST_SUITE_P(Modes, GemmPackingPaths,
                         ::testing::ValuesIn(kAllModes));

TEST(GemmPackingPaths, PackAheadPipelineOnTinyLlcMachine) {
  // Force the t = 1 pack-ahead pipeline by using the Phytium descriptor
  // (2 MB LLC) with a B larger than it, N covering many slivers
  // including an edge one.
  static const arch::MachineDescriptor phy = arch::phytium_2000p();
  Config cfg;
  cfg.machine = &phy;
  run_and_check<float>({Trans::N, Trans::N}, 23, 1210, 520, 1.f, 0.f, cfg);
  run_and_check<float>({Trans::N, Trans::N}, 23, 1212, 520, 1.f, 1.f, cfg);
}

// ---------------------------------------------------------------------------
// Feature-flag ablations must not change results.
// ---------------------------------------------------------------------------
class GemmAblations : public ::testing::TestWithParam<std::tuple<bool, bool,
                                                                 bool>> {};

TEST_P(GemmAblations, SameResultUnderAllFlagCombos) {
  const auto [selective, fused, edges] = GetParam();
  Config cfg;
  cfg.selective_packing = selective;
  cfg.fused_packing = fused;
  cfg.optimized_edges = edges;
  for (Mode mode : kAllModes) {
    run_and_check<float>(mode, 33, 45, 27, 1.f, 0.5f, cfg);
    run_and_check<float>(mode, 20, 700, 300, 1.f, 0.f, cfg);
  }
}

INSTANTIATE_TEST_SUITE_P(Flags, GemmAblations,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// Paper machines as config targets (models consume their cache sizes).
// ---------------------------------------------------------------------------
TEST(GemmMachines, AllPresetsProduceCorrectResults) {
  for (const auto& mach : arch::paper_machines()) {
    Config cfg;
    cfg.machine = &mach;
    run_and_check<float>({Trans::N, Trans::N}, 64, 200, 150, 1.f, 0.f, cfg);
    run_and_check<float>({Trans::N, Trans::T}, 64, 200, 150, 1.f, 0.f, cfg);
  }
}

}  // namespace
}  // namespace shalom
