// Direct tests of the micro-kernel layer: every dispatchable tile variant
// (m_eff x n_eff, all access-policy combinations) against a scalar
// reference, plus the fused packing kernels' dual outputs (C tile AND
// packed buffer, the latter compared bit-for-bit against the plain
// packing routines).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/dispatch.h"
#include "core/pack.h"

namespace shalom::ukr {
namespace {

constexpr index_t kKc = 37;  // not a lane multiple: exercises the k tail

/// Scalar oracle for one C tile update with the canonical access forms.
template <typename T>
void tile_oracle(AAccess aa, int m, int n, index_t kc, const T* a,
                 index_t lda, const T* b, index_t ldb, T alpha, T beta,
                 Matrix<T>& c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      T sum{};
      for (index_t k = 0; k < kc; ++k) {
        const T av = aa == AAccess::kDirect ? a[i * lda + k] : a[k * lda + i];
        sum += av * b[k * ldb + j];
      }
      c(i, j) = beta == T{0} ? alpha * sum : beta * c(i, j) + alpha * sum;
    }
  }
}

template <typename T>
struct KernelFixture {
  // Direct A: 7 rows x kc (row-major, padded ld); packed A: column sliver.
  Matrix<T> a_direct{kMaxMr, kKc + 3, kKc + 3};
  std::vector<T> a_packed;
  Matrix<T> b_direct{kKc, 16, 16};
  std::vector<T> b_packed;
  int nr_full;

  KernelFixture() {
    constexpr int L = simd::vec_of_t<T>::kLanes;
    nr_full = kMaxNrv * L;
    fill_random(a_direct, 21);
    Matrix<T> b_src(kKc, nr_full);
    fill_random(b_src, 22);
    // Keep direct B consistent with the packed copy.
    for (index_t k = 0; k < kKc; ++k)
      for (int j = 0; j < nr_full; ++j) b_direct(k, j) = b_src(k, j);
    b_packed.assign(pack::b_panel_elems(kKc, nr_full, nr_full) +
                        kPackSlackElems,
                    T{});
    pack::pack_b_n(b_src.data(), b_src.ld(), kKc, nr_full, nr_full,
                   b_packed.data());
    a_packed.assign(pack::a_panel_elems(kMaxMr, kKc, kMaxMr) +
                        kPackSlackElems,
                    T{});
    pack::pack_a_n(a_direct.data(), a_direct.ld(), kMaxMr, kKc, kMaxMr,
                   a_packed.data());
  }
};

template <typename T, AAccess AA, BAccess BA>
void check_all_tiles() {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  KernelFixture<T> fx;
  const T* a = AA == AAccess::kDirect ? fx.a_direct.data()
                                      : fx.a_packed.data();
  const index_t lda =
      AA == AAccess::kDirect ? fx.a_direct.ld() : index_t{kMaxMr};
  const T* b =
      BA == BAccess::kDirect ? fx.b_direct.data() : fx.b_packed.data();
  const index_t ldb = BA == BAccess::kDirect ? fx.b_direct.ld()
                                             : index_t{fx.nr_full};

  for (int m = 1; m <= kMaxMr; ++m) {
    for (int n = 1; n <= kMaxNrv * L; ++n) {
      for (T beta : {T{0}, T{1}, T(0.5)}) {
        Matrix<T> c(kMaxMr, 16), c_ref(kMaxMr, 16);
        fill_random(c, 31);
        c_ref = c;
        const T alpha = T(1.25);
        run_main_tile<T, AA, BA>(m, n, kKc, a, lda, b, ldb, c.data(),
                                 c.ld(), alpha, beta);
        tile_oracle<T>(AA, m, n, kKc, a, lda, b, ldb, alpha, beta, c_ref);
        const double tol = std::is_same_v<T, float> ? 1e-4 : 1e-12;
        for (index_t i = 0; i < kMaxMr; ++i)
          for (index_t j = 0; j < 16; ++j)
            ASSERT_NEAR(c(i, j), c_ref(i, j), tol)
                << "m=" << m << " n=" << n << " beta=" << beta << " at ("
                << i << "," << j << ")";
      }
    }
  }
}

TEST(MainKernel, F32DirectDirect) {
  check_all_tiles<float, AAccess::kDirect, BAccess::kDirect>();
}
TEST(MainKernel, F32DirectPacked) {
  check_all_tiles<float, AAccess::kDirect, BAccess::kPacked>();
}
TEST(MainKernel, F32PackedPacked) {
  check_all_tiles<float, AAccess::kPacked, BAccess::kPacked>();
}
TEST(MainKernel, F32PackedDirect) {
  check_all_tiles<float, AAccess::kPacked, BAccess::kDirect>();
}
TEST(MainKernel, F64DirectDirect) {
  check_all_tiles<double, AAccess::kDirect, BAccess::kDirect>();
}
TEST(MainKernel, F64DirectPacked) {
  check_all_tiles<double, AAccess::kDirect, BAccess::kPacked>();
}
TEST(MainKernel, F64PackedPacked) {
  check_all_tiles<double, AAccess::kPacked, BAccess::kPacked>();
}

TEST(MainKernel, BetaZeroIgnoresNanInC) {
  // BLAS semantics: beta == 0 must not read C (NaN * 0 would poison it).
  KernelFixture<float> fx;
  Matrix<float> c(kMaxMr, 16);
  c.fill(std::numeric_limits<float>::quiet_NaN());
  run_main_tile<float, AAccess::kDirect, BAccess::kDirect>(
      7, 12, kKc, fx.a_direct.data(), fx.a_direct.ld(), fx.b_direct.data(),
      fx.b_direct.ld(), c.data(), c.ld(), 1.f, 0.f);
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 12; ++j) EXPECT_FALSE(std::isnan(c(i, j)));
}

template <typename T>
void check_fused_nn(int n_eff, bool ahead) {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  const int nr_full = kMaxNrv * L;
  Matrix<T> a(kMaxMr, kKc);
  Matrix<T> b(kKc, 2 * nr_full);  // current + next sliver side by side
  fill_random(a, 41);
  fill_random(b, 42);

  std::vector<T> bc(nr_full * kKc + kPackSlackElems, T{-7});
  std::vector<T> bc_next(nr_full * kKc + kPackSlackElems, T{-7});
  Matrix<T> c(kMaxMr, nr_full), c_ref(kMaxMr, nr_full);
  fill_random(c, 43);
  c_ref = c;

  run_fused_pack_nn<T>(/*pack_cur=*/true, ahead, n_eff, kKc, a.data(),
                       a.ld(), b.data(), b.ld(), bc.data(),
                       b.data() + nr_full, b.ld(),
                       ahead ? bc_next.data() : nullptr, c.data(), c.ld(),
                       T(1.5), T(0.5));

  // (1) C stripe matches the scalar oracle.
  tile_oracle<T>(AAccess::kDirect, kMaxMr, n_eff, kKc, a.data(), a.ld(),
                 b.data(), b.ld(), T(1.5), T(0.5), c_ref);
  const double tol = std::is_same_v<T, float> ? 1e-4 : 1e-12;
  for (index_t i = 0; i < kMaxMr; ++i)
    for (int j = 0; j < n_eff; ++j)
      ASSERT_NEAR(c(i, j), c_ref(i, j), tol) << i << "," << j;

  // (2) The packed sliver is bit-identical to the plain packing routine.
  std::vector<T> bc_oracle(nr_full * kKc + kPackSlackElems, T{});
  pack::pack_b_n(b.data(), b.ld(), kKc, n_eff, nr_full, bc_oracle.data());
  for (index_t k = 0; k < kKc; ++k)
    for (int j = 0; j < nr_full; ++j)
      ASSERT_EQ(bc[k * nr_full + j], bc_oracle[k * nr_full + j])
          << "bc k=" << k << " j=" << j << " n_eff=" << n_eff;

  // (3) With pack-ahead, the next (full) sliver is packed too.
  if (ahead) {
    std::vector<T> next_oracle(nr_full * kKc + kPackSlackElems, T{});
    pack::pack_b_n(b.data() + nr_full, b.ld(), kKc, nr_full, nr_full,
                   next_oracle.data());
    for (index_t k = 0; k < kKc; ++k)
      for (int j = 0; j < nr_full; ++j)
        ASSERT_EQ(bc_next[k * nr_full + j], next_oracle[k * nr_full + j])
            << "bc_next k=" << k << " j=" << j;
  }
}

TEST(FusedPackNN, AllWidthsF32) {
  for (int n_eff = 1; n_eff <= 12; ++n_eff) {
    check_fused_nn<float>(n_eff, false);
    check_fused_nn<float>(n_eff, true);
  }
}

TEST(FusedPackNN, AllWidthsF64) {
  for (int n_eff = 1; n_eff <= 6; ++n_eff) {
    check_fused_nn<double>(n_eff, false);
    check_fused_nn<double>(n_eff, true);
  }
}

TEST(FusedPackNN, ReadsPackedCurrentSliver) {
  // PackCur = false: b points at an already-packed sliver.
  constexpr int nr_full = 12;
  Matrix<float> a(kMaxMr, kKc);
  Matrix<float> b(kKc, nr_full);
  fill_random(a, 51);
  fill_random(b, 52);
  std::vector<float> bc(nr_full * kKc + kPackSlackElems);
  pack::pack_b_n(b.data(), b.ld(), kKc, nr_full, nr_full, bc.data());

  Matrix<float> c(kMaxMr, nr_full), c_ref(kMaxMr, nr_full);
  run_fused_pack_nn<float>(/*pack_cur=*/false, false, nr_full, kKc,
                           a.data(), a.ld(), bc.data(), nr_full, nullptr,
                           nullptr, 0, nullptr, c.data(), c.ld(), 1.f, 0.f);
  tile_oracle<float>(AAccess::kDirect, kMaxMr, nr_full, kKc, a.data(),
                     a.ld(), b.data(), b.ld(), 1.f, 0.f, c_ref);
  for (index_t i = 0; i < kMaxMr; ++i)
    for (int j = 0; j < nr_full; ++j)
      ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-4f);
}

TEST(FusedPackNT, ComputesAndScatters) {
  constexpr int nr_full = 12;
  Matrix<float> a(kMaxMr, kKc);
  Matrix<float> b(nr_full, kKc);  // op(B) columns = B storage rows
  fill_random(a, 61);
  fill_random(b, 62);

  std::vector<float> bc(nr_full * kKc + kPackSlackElems, 0.f);
  Matrix<float> c(kMaxMr, nr_full), c_ref(kMaxMr, nr_full);
  fill_random(c, 63);
  c_ref = c;

  for (int jb = 0; jb < nr_full; jb += 3)
    run_fused_pack_nt<float>(3, kKc, a.data(), a.ld(), b.data(), b.ld(),
                             bc.data(), jb, nr_full,
                             /*store_full=*/jb + 3 < nr_full, c.data(),
                             c.ld(), 2.f, 1.f);

  // C oracle: inner product over op(B) = B^T.
  for (index_t i = 0; i < kMaxMr; ++i) {
    for (int j = 0; j < nr_full; ++j) {
      float sum = 0.f;
      for (index_t k = 0; k < kKc; ++k) sum += a(i, k) * b(j, k);
      c_ref(i, j) = c_ref(i, j) + 2.f * sum;
    }
  }
  for (index_t i = 0; i < kMaxMr; ++i)
    for (int j = 0; j < nr_full; ++j)
      ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-3f) << i << "," << j;

  // Bc oracle: identical to the plain transpose-pack.
  std::vector<float> bc_oracle(nr_full * kKc + kPackSlackElems, 0.f);
  pack::pack_b_t(b.data(), b.ld(), kKc, nr_full, nr_full,
                 bc_oracle.data());
  for (index_t k = 0; k < kKc; ++k)
    for (int j = 0; j < nr_full; ++j)
      ASSERT_EQ(bc[k * nr_full + j], bc_oracle[k * nr_full + j])
          << "k=" << k << " j=" << j;
}

TEST(FusedPackNT, PartialColumnGroups) {
  // JB = 1 and 2 groups (sliver edge widths).
  constexpr int nr_full = 12;
  Matrix<float> a(kMaxMr, kKc);
  Matrix<float> b(nr_full, kKc);
  fill_random(a, 71);
  fill_random(b, 72);
  for (int width : {1, 2, 4, 5}) {
    std::vector<float> bc(nr_full * kKc + kPackSlackElems, 0.f);
    Matrix<float> c(kMaxMr, nr_full);
    for (int jb = 0; jb < width; jb += 3) {
      const int w = std::min(3, width - jb);
      run_fused_pack_nt<float>(w, kKc, a.data(), a.ld(), b.data(), b.ld(),
                               bc.data(), jb, nr_full,
                               /*store_full=*/jb + w < width, c.data(),
                               c.ld(), 1.f, 0.f);
    }
    for (index_t i = 0; i < kMaxMr; ++i) {
      for (int j = 0; j < width; ++j) {
        float sum = 0.f;
        for (index_t k = 0; k < kKc; ++k) sum += a(i, k) * b(j, k);
        ASSERT_NEAR(c(i, j), sum, 1e-3f) << "width=" << width;
      }
    }
  }
}

TEST(MainKernel, DirectTransAccess) {
  // a(i,k) = a[k*lda + i]: the TN/TT in-place path with overlapping
  // column loads. Compare against the packed-A oracle formula.
  constexpr index_t lda = kMaxMr + 5;  // extra rows below the stripe
  Matrix<float> a(kKc, lda);
  Matrix<float> b(kKc, 16);
  fill_random(a, 91);
  fill_random(b, 92);
  for (int m = 1; m <= kMaxMr; ++m) {
    for (int n : {1, 5, 8, 12}) {
      Matrix<float> c(kMaxMr, 16), c_ref(kMaxMr, 16);
      fill_random(c, 93);
      c_ref = c;
      run_main_tile<float, AAccess::kDirectTrans, BAccess::kDirect>(
          m, n, kKc, a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld(),
          1.5f, 0.5f);
      tile_oracle<float>(AAccess::kPacked, m, n, kKc, a.data(), a.ld(),
                         b.data(), b.ld(), 1.5f, 0.5f, c_ref);
      for (index_t i = 0; i < m; ++i)
        for (index_t j = 0; j < n; ++j)
          ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-4f)
              << "m=" << m << " n=" << n << " (" << i << "," << j << ")";
    }
  }
}

TEST(FusedPackTN, ComputesAndPacksAc) {
  // One full stripe: C tile matches the oracle AND Ac matches pack_a_t.
  constexpr index_t lda = kMaxMr;  // stripe exactly fills the rows
  Matrix<float> a(kKc, lda);       // transposed storage: K x M
  Matrix<float> b(kKc, 16);
  fill_random(a, 94);
  fill_random(b, 95);
  for (int n : {3, 8, 12}) {
    std::vector<float> ac(kMaxMr * kKc + kPackSlackElems, -5.f);
    Matrix<float> c(kMaxMr, 16), c_ref(kMaxMr, 16);
    fill_random(c, 96);
    c_ref = c;
    run_fused_pack_tn<float>(/*b_packed=*/false, n, kKc, a.data(), a.ld(),
                             ac.data(), b.data(), b.ld(), c.data(), c.ld(),
                             2.f, 1.f);
    tile_oracle<float>(AAccess::kPacked, kMaxMr, n, kKc, a.data(), a.ld(),
                       b.data(), b.ld(), 2.f, 1.f, c_ref);
    for (index_t i = 0; i < kMaxMr; ++i)
      for (int j = 0; j < n; ++j)
        ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-4f) << i << "," << j;

    std::vector<float> ac_oracle(kMaxMr * kKc + kPackSlackElems, 0.f);
    pack::pack_a_t(a.data(), a.ld(), kMaxMr, kKc, kMaxMr,
                   ac_oracle.data());
    for (index_t k = 0; k < kKc; ++k)
      for (int i = 0; i < kMaxMr; ++i)
        ASSERT_EQ(ac[k * kMaxMr + i], ac_oracle[k * kMaxMr + i])
            << "k=" << k << " i=" << i;
  }
}

TEST(ScalarKernel, MatchesOracle) {
  KernelFixture<float> fx;
  Matrix<float> c(kMaxMr, 16), c_ref(kMaxMr, 16);
  fill_random(c, 81);
  c_ref = c;
  kern_scalar<float, AAccess::kDirect, BAccess::kDirect>(
      5, 9, kKc, fx.a_direct.data(), fx.a_direct.ld(), fx.b_direct.data(),
      fx.b_direct.ld(), c.data(), c.ld(), 1.5f, 0.25f);
  tile_oracle<float>(AAccess::kDirect, 5, 9, kKc, fx.a_direct.data(),
                     fx.a_direct.ld(), fx.b_direct.data(),
                     fx.b_direct.ld(), 1.5f, 0.25f, c_ref);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 9; ++j)
      EXPECT_NEAR(c(i, j), c_ref(i, j), 1e-4f);
}

}  // namespace
}  // namespace shalom::ukr
