// Differential GEMM fuzzer: random shapes, modes, strides, scalars,
// thread counts and feature-flag combinations, every result checked
// against the naive scalar oracle. Two operating modes:
//
//   fuzz_gemm --iters N [--seed S]
//       Tolerance-checked sweep over the full optimized dispatch space,
//       including degenerate shapes (M/N/K == 0) and alpha == 0.
//
//   fuzz_gemm --iters N --bitwise-scalar
//       Every comparison must match the oracle BITWISE. Run under
//       SHALOM_FAULT=selfcheck.probe:every-1 this proves the quarantine
//       re-routing end to end: with all optimized kernels quarantined,
//       dispatch lands on the scalar reference and must reproduce naive
//       exactly (kc_override = K keeps one k-block so the accumulation
//       order matches; alpha == 0 is excluded because scale_c short-cuts
//       the multiply).
//
// Exits non-zero on the first mismatch, printing a one-line reproducer.
// Registered under `ctest -L fuzz` (plain and quarantined variants).
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/naive.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/shalom.h"
#include "core/shalom_c.h"

namespace {

using shalom::Config;
using shalom::index_t;
using shalom::Mode;
using shalom::SplitMix64;
using shalom::Trans;

struct Case {
  Mode mode;
  index_t m, n, k;
  index_t lda, ldb, ldc;
  float alpha, beta;
  Config cfg;
};

Case draw(SplitMix64& rng, bool bitwise_scalar) {
  Case c;
  c.mode.a = rng.next_u64() % 2 ? Trans::T : Trans::N;
  c.mode.b = rng.next_u64() % 2 ? Trans::T : Trans::N;
  c.m = 1 + static_cast<index_t>(rng.next_u64() % 56);
  c.n = 1 + static_cast<index_t>(rng.next_u64() % 56);
  c.k = 1 + static_cast<index_t>(rng.next_u64() % 48);
  if (!bitwise_scalar) {
    // One case in ~12 degenerates a dimension; the library must reduce it
    // to (at most) a beta scale without touching the packing machinery.
    if (rng.next_u64() % 12 == 0) c.m = 0;
    if (rng.next_u64() % 12 == 0) c.n = 0;
    if (rng.next_u64() % 12 == 0) c.k = 0;
  }
  const index_t a_cols = (c.mode.a == Trans::N) ? c.k : c.m;
  const index_t b_cols = (c.mode.b == Trans::N) ? c.n : c.k;
  c.lda = a_cols + static_cast<index_t>(rng.next_u64() % 7);
  c.ldb = b_cols + static_cast<index_t>(rng.next_u64() % 7);
  c.ldc = c.n + static_cast<index_t>(rng.next_u64() % 9);
  // Degenerate dims still require ld >= 1.
  if (c.lda == 0) c.lda = 1;
  if (c.ldb == 0) c.ldb = 1;
  if (c.ldc == 0) c.ldc = 1;

  const float alphas[] = {1.f, -1.f, 0.75f, 1.25f, 0.f};
  const float betas[] = {0.f, 1.f, -0.5f, 2.f};
  c.alpha = alphas[rng.next_u64() % (bitwise_scalar ? 4 : 5)];
  c.beta = betas[rng.next_u64() % 4];

  c.cfg.selective_packing = rng.next_u64() % 4 != 0;
  c.cfg.fused_packing = rng.next_u64() % 4 != 0;
  c.cfg.optimized_edges = rng.next_u64() % 4 != 0;
  c.cfg.use_plan_cache = rng.next_u64() % 2 != 0;
  c.cfg.threads = 1 + static_cast<int>(rng.next_u64() % 4);
  if (bitwise_scalar) c.cfg.kc_override = c.k;
  return c;
}

void fill(std::vector<float>& v, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (float& x : v)
    x = static_cast<float>(rng.next_u64() % 2048) / 1024.0f - 1.0f;
}

/// One fuzz iteration; returns false (after printing a reproducer) on
/// divergence from the oracle.
bool run_case(const Case& c, std::uint64_t seed, long iter,
              bool bitwise) {
  const index_t a_rows = (c.mode.a == Trans::N) ? c.m : c.k;
  const index_t b_rows = (c.mode.b == Trans::N) ? c.k : c.n;
  std::vector<float> a(static_cast<std::size_t>(a_rows * c.lda) + 1);
  std::vector<float> b(static_cast<std::size_t>(b_rows * c.ldb) + 1);
  std::vector<float> cm(static_cast<std::size_t>(c.m * c.ldc) + 1);
  fill(a, seed ^ 0xA);
  fill(b, seed ^ 0xB);
  fill(cm, seed ^ 0xC);
  std::vector<float> c_ref = cm;

  shalom::gemm(c.mode.a, c.mode.b, c.m, c.n, c.k, c.alpha, a.data(), c.lda,
               b.data(), c.ldb, c.beta, cm.data(), c.ldc, c.cfg);
  shalom::baselines::naive_gemm(c.mode, c.m, c.n, c.k, c.alpha, a.data(),
                                c.lda, b.data(), c.ldb, c.beta, c_ref.data(),
                                c.ldc);

  const double tol =
      bitwise ? 0.0 : (static_cast<double>(c.k) + 16.0) * 1e-6;
  for (index_t i = 0; i < c.m; ++i) {
    for (index_t j = 0; j < c.n; ++j) {
      const float got = cm[static_cast<std::size_t>(i * c.ldc + j)];
      const float want = c_ref[static_cast<std::size_t>(i * c.ldc + j)];
      const bool ok = bitwise ? std::memcmp(&got, &want, sizeof(float)) == 0
                              : std::fabs(static_cast<double>(got) -
                                          static_cast<double>(want)) <= tol;
      if (!ok) {
        std::fprintf(
            stderr,
            "fuzz_gemm: MISMATCH iter=%ld seed=%" PRIu64
            " mode=%c%c m=%td n=%td k=%td lda=%td ldb=%td ldc=%td "
            "alpha=%g beta=%g threads=%d flags=%d%d%d cache=%d "
            "at (%td,%td): got %.9g want %.9g\n"
            "reproduce: fuzz_gemm --iters %ld --seed %" PRIu64 "%s\n",
            iter, seed, c.mode.a == Trans::N ? 'N' : 'T',
            c.mode.b == Trans::N ? 'N' : 'T', c.m, c.n, c.k, c.lda, c.ldb,
            c.ldc, static_cast<double>(c.alpha),
            static_cast<double>(c.beta), c.cfg.threads,
            c.cfg.selective_packing, c.cfg.fused_packing,
            c.cfg.optimized_edges, c.cfg.use_plan_cache, i, j,
            static_cast<double>(got), static_cast<double>(want), iter + 1,
            seed, bitwise ? " --bitwise-scalar" : "");
        return false;
      }
    }
  }

  // Degenerate K with beta scaling: spot-check the C API agrees (it must
  // return SHALOM_OK and the same scaled values).
  if (c.k == 0 && c.m > 0 && c.n > 0) {
    std::vector<float> cc = c_ref;
    const int rc = shalom_sgemm(
        c.mode.a == Trans::N ? 'N' : 'T', c.mode.b == Trans::N ? 'N' : 'T',
        c.m, c.n, c.k, c.alpha, a.data(), c.lda, b.data(), c.ldb, c.beta,
        cc.data(), c.ldc, c.cfg.threads);
    if (rc != SHALOM_OK) {
      std::fprintf(stderr,
                   "fuzz_gemm: C API failed on degenerate K=0 (iter=%ld "
                   "seed=%" PRIu64 "): %s\n",
                   iter, seed, shalom_strerror(rc));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long iters = 200;
  std::uint64_t seed = 0x5ead5eed2026ULL;
  bool bitwise = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc) {
      iters = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--bitwise-scalar") {
      bitwise = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_gemm [--iters N] [--seed S] "
                   "[--bitwise-scalar]\n");
      return 2;
    }
  }

  shalom::SplitMix64 meta(seed);
  long failures = 0;
  for (long i = 0; i < iters; ++i) {
    const std::uint64_t case_seed = meta.next_u64();
    shalom::SplitMix64 rng(case_seed);
    const Case c = draw(rng, bitwise);
    if (!run_case(c, case_seed, i, bitwise)) {
      failures++;
      break;  // first mismatch is enough; the reproducer is printed
    }
  }

  if (failures != 0) return 1;

  const shalom::RobustnessStats s = shalom::robustness_stats();
  if (bitwise && std::getenv("SHALOM_FAULT") != nullptr &&
      s.kernels_quarantined == 0) {
    // The quarantined ctest variant arms selfcheck.probe; if nothing got
    // quarantined the bitwise pass proved nothing about the re-routing.
    std::fprintf(stderr,
                 "fuzz_gemm: SHALOM_FAULT set but no kernel was "
                 "quarantined; re-routing untested\n");
    return 1;
  }
  std::fprintf(stderr,
               "fuzz_gemm: %ld iterations OK (%s); selfchecks_run=%" PRIu64
               " kernels_quarantined=%" PRIu64 "\n",
               iters, bitwise ? "bitwise vs scalar oracle" : "tolerance",
               s.selfchecks_run, s.kernels_quarantined);
  return 0;
}
