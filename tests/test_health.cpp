// Self-healing recovery battery (PR 10): the component health registry
// state machine, per-component recovery paths (kernel un-quarantine,
// thread-pool re-expansion, half-open stream breakers), the background
// Prober lifecycle, and the C surface (shalom_health_report /
// shalom_recover_now). Labelled `health`; scripts/tier1.sh re-runs this
// suite under ThreadSanitizer and under SHALOM_RECOVERY_MS wrappers
// (disabled / tuned / malformed), so every test must be race-clean and
// must skip-or-adapt when the env wrapper changes the knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/health.h"
#include "common/selfcheck.h"
#include "core/engine.h"
#include "core/shalom.h"
#include "core/shalom_c.h"
#include "core/threadpool.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

using health::Cause;
using health::Component;
using health::State;

void sleep_ms(long ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Breaker cool-downs live inside the stream (health::expire_cooldowns
/// cannot fast-forward them), so breaker tests genuinely sleep out the
/// base cool-down. Skip them when an env wrapper makes that unaffordable.
bool breaker_wait_affordable() { return health::env_recovery_ms() <= 2000; }

/// Thread-safe tolerance check (GTest assertions are not thread-safe;
/// worker threads tally mismatches, the main thread asserts).
bool matches_reference(const testing::Problem<float>& p) {
  const double tol = testing::gemm_tolerance<float>(p.k);
  for (index_t i = 0; i < p.m; ++i)
    for (index_t j = 0; j < p.n; ++j)
      if (std::fabs(static_cast<double>(p.c(i, j)) -
                    static_cast<double>(p.c_ref(i, j))) > tol)
        return false;
  return true;
}

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    robustness_stats_reset();
    selfcheck::reset_for_testing();
    health::reset_for_testing();
  }
  void TearDown() override {
    fault::disarm_all();
    selfcheck::set_probe_body_for_testing(nullptr);
    selfcheck::reset_for_testing();
    health::reset_for_testing();
  }
};

// ---------------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------------

// SHALOM_RECOVERY_MS / SHALOM_PROBATION_N parse through the warn-once
// env funnel: defaults when unset, the parsed value when well-formed,
// the fallback when malformed. The tier1 HealthEnv wrappers re-run this
// test with each of those shapes.
TEST_F(HealthTest, EnvKnobsParseWithFallback) {
  const char* raw_ms = env::raw("SHALOM_RECOVERY_MS");
  const long ms = health::env_recovery_ms();
  if (raw_ms == nullptr) {
    EXPECT_EQ(ms, 250) << "default base cool-down";
  } else if (std::strcmp(raw_ms, "77") == 0) {
    EXPECT_EQ(ms, 77) << "well-formed override must win";
  } else if (std::strcmp(raw_ms, "banana") == 0) {
    EXPECT_EQ(ms, 250) << "malformed values fall back to the default";
  }
  EXPECT_GE(ms, 0);
  EXPECT_LE(ms, 3600000);
  EXPECT_EQ(health::recovery_enabled(), ms > 0);

  const char* raw_n = env::raw("SHALOM_PROBATION_N");
  const long n = health::env_probation_n();
  if (raw_n == nullptr) {
    EXPECT_EQ(n, 3) << "default probation streak";
  } else if (std::strcmp(raw_n, "5") == 0) {
    EXPECT_EQ(n, 5);
  }
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 64);
}

// ---------------------------------------------------------------------------
// Registry state machine
// ---------------------------------------------------------------------------

TEST_F(HealthTest, RegistryDegradeProbateRecover) {
  EXPECT_TRUE(health::all_healthy());
  health::report_degraded(Component::kPlanCache, Cause::kOverload);
  EXPECT_EQ(health::state(Component::kPlanCache), State::kDegraded);
  EXPECT_EQ(health::cause(Component::kPlanCache), Cause::kOverload);
  EXPECT_FALSE(health::all_healthy());

  // Degrading again does not restart the cool-down, only the cause moves.
  health::report_degraded(Component::kPlanCache, Cause::kInjected);
  EXPECT_EQ(health::state(Component::kPlanCache), State::kDegraded);
  EXPECT_EQ(health::cause(Component::kPlanCache), Cause::kInjected);

  if (!health::recovery_enabled()) {
    EXPECT_FALSE(health::try_begin_probation(Component::kPlanCache))
        << "SHALOM_RECOVERY_MS=0 must keep every latch permanent";
    return;
  }
  // Cool-down still pending: probation refused.
  EXPECT_FALSE(health::try_begin_probation(Component::kPlanCache));
  health::expire_cooldowns();
  EXPECT_TRUE(health::try_begin_probation(Component::kPlanCache));
  EXPECT_EQ(health::state(Component::kPlanCache), State::kProbation);
  // The probation owner is exclusive.
  EXPECT_FALSE(health::try_begin_probation(Component::kPlanCache));
  health::probation_succeeded(Component::kPlanCache);
  EXPECT_EQ(health::state(Component::kPlanCache), State::kHealthy);
  EXPECT_TRUE(health::all_healthy());
  EXPECT_GE(robustness_stats().recoveries, 1u);
}

TEST_F(HealthTest, RegistryRecoveredCountsOnlyTransitions) {
  health::report_degraded(Component::kTunedTable, Cause::kOverload);
  health::report_recovered(Component::kTunedTable);
  EXPECT_EQ(health::state(Component::kTunedTable), State::kHealthy);
  EXPECT_EQ(robustness_stats().recoveries, 1u);
  // Already healthy: the success path is idempotent and free.
  health::report_recovered(Component::kTunedTable);
  health::report_recovered(Component::kTunedTable);
  EXPECT_EQ(robustness_stats().recoveries, 1u);
}

TEST_F(HealthTest, RegistryProbationFailureDoublesBackoffCapped) {
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  const std::uint64_t base =
      static_cast<std::uint64_t>(health::env_recovery_ms());
  health::report_degraded(Component::kTunedTable, Cause::kOverload);
  EXPECT_EQ(health::component_report(Component::kTunedTable).backoff_ms,
            base);

  std::uint64_t want = base;
  for (int i = 0; i < 9; ++i) {
    health::expire_cooldowns();
    ASSERT_TRUE(health::try_begin_probation(Component::kTunedTable));
    health::probation_failed(Component::kTunedTable);
    EXPECT_EQ(health::state(Component::kTunedTable), State::kDegraded);
    want = std::min<std::uint64_t>(want * 2, base * 64);
    EXPECT_EQ(health::component_report(Component::kTunedTable).backoff_ms,
              want)
        << "failure #" << i + 1
        << " must double the cool-down, capped at 64x base";
  }
  EXPECT_EQ(robustness_stats().probation_failures, 9u);
  // One clean probation resets the backoff to the base.
  health::expire_cooldowns();
  ASSERT_TRUE(health::try_begin_probation(Component::kTunedTable));
  health::probation_succeeded(Component::kTunedTable);
  health::report_degraded(Component::kTunedTable, Cause::kOverload);
  EXPECT_EQ(health::component_report(Component::kTunedTable).backoff_ms,
            base);
}

TEST_F(HealthTest, RegistryQuarantineIsSticky) {
  health::report_quarantined(Component::kKernels, Cause::kTrap);
  EXPECT_EQ(health::state(Component::kKernels), State::kQuarantined);
  health::expire_cooldowns();
  EXPECT_FALSE(health::try_begin_probation(Component::kKernels))
      << "terminal evidence is never re-probed";
  health::report_recovered(Component::kKernels);
  EXPECT_EQ(health::state(Component::kKernels), State::kQuarantined);
  health::report_degraded(Component::kKernels, Cause::kMismatch);
  EXPECT_EQ(health::state(Component::kKernels), State::kQuarantined);
  EXPECT_EQ(health::cause(Component::kKernels), Cause::kTrap)
      << "quarantine evidence outranks later degradations";
}

// Under the SHALOM_RECOVERY_MS=0 wrapper every pre-recovery latch must
// behave exactly as it did before this layer existed: permanent.
TEST_F(HealthTest, RecoveryDisabledPreservesPermanentLatch) {
  if (health::recovery_enabled())
    GTEST_SKIP() << "needs the SHALOM_RECOVERY_MS=0 wrapper";
  health::report_degraded(Component::kPlanCache, Cause::kOverload);
  health::expire_cooldowns();
  EXPECT_FALSE(health::try_begin_probation(Component::kPlanCache));
  EXPECT_EQ(health::recover_now(), 0)
      << "recover_now must be inert with recovery disabled";
  EXPECT_EQ(health::state(Component::kPlanCache), State::kDegraded);

  selfcheck::quarantine(selfcheck::Variant::kMainF32PackedPacked,
                        Cause::kInjected);
  EXPECT_FALSE(selfcheck::try_recover_quarantined());
  EXPECT_EQ(selfcheck::status(selfcheck::Variant::kMainF32PackedPacked),
            selfcheck::Status::kQuarantined)
      << "a quarantined kernel stays quarantined forever";
  EXPECT_EQ(shalom_recover_now(), 0);
}

TEST_F(HealthTest, RegistryNamesAreStable) {
  EXPECT_STREQ(health::component_name(Component::kKernels), "kernels");
  EXPECT_STREQ(health::component_name(Component::kStreamBreaker),
               "stream_breaker");
  EXPECT_STREQ(health::state_name(State::kProbation), "PROBATION");
  EXPECT_STREQ(health::cause_name(Cause::kOverload), "overload");
  for (int c = 0; c < health::kComponentCount; ++c)
    EXPECT_NE(health::component_name(static_cast<Component>(c)), nullptr);
}

// ---------------------------------------------------------------------------
// Kernel recovery (selfcheck quarantine <-> health registry)
// ---------------------------------------------------------------------------

TEST_F(HealthTest, KernelQuarantineRecordsCause) {
  const selfcheck::Variant v = selfcheck::Variant::kFusedNnF32;
  EXPECT_EQ(selfcheck::quarantine_cause(v), Cause::kNone);
  selfcheck::quarantine(v, Cause::kInjected);
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kQuarantined);
  EXPECT_EQ(selfcheck::quarantine_cause(v), Cause::kInjected);
  EXPECT_EQ(health::state(Component::kKernels), State::kDegraded);
  EXPECT_EQ(health::cause(Component::kKernels), Cause::kInjected);
}

TEST_F(HealthTest, KernelInjectedQuarantineRecovers) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  const selfcheck::Variant v = selfcheck::Variant::kMainF32PackedPacked;
  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kEveryN, 1);
  EXPECT_FALSE(selfcheck::variant_ok(v));
  fault::disarm_all();
  ASSERT_EQ(selfcheck::status(v), selfcheck::Status::kQuarantined);
  ASSERT_EQ(selfcheck::quarantine_cause(v), Cause::kInjected);

  health::expire_cooldowns();
  EXPECT_TRUE(selfcheck::try_recover_quarantined());
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kVerified)
      << "a clean probation streak must restore the variant";
  EXPECT_EQ(selfcheck::quarantine_cause(v), Cause::kNone);
  EXPECT_EQ(health::state(Component::kKernels), State::kHealthy);
  EXPECT_GE(robustness_stats().recoveries, 1u);
  EXPECT_GE(robustness_stats().probation_probes,
            static_cast<std::uint64_t>(health::env_probation_n()));
}

TEST_F(HealthTest, KernelTrapCauseIsPermanent) {
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  const selfcheck::Variant v = selfcheck::Variant::kWide256;
  selfcheck::quarantine(v);  // default cause: kTrap (positive evidence)
  ASSERT_EQ(selfcheck::quarantine_cause(v), Cause::kTrap);

  health::expire_cooldowns();
  EXPECT_FALSE(selfcheck::try_recover_quarantined())
      << "trap-cause variants are skipped, so the component stays down";
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kQuarantined);
  EXPECT_EQ(health::state(Component::kKernels), State::kDegraded);
  EXPECT_GE(robustness_stats().probation_failures, 1u);
}

TEST_F(HealthTest, KernelProbeFaultRelatchesWithDoubledBackoff) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  const std::uint64_t base =
      static_cast<std::uint64_t>(health::env_recovery_ms());
  const selfcheck::Variant v = selfcheck::Variant::kEdgeF64PackedPacked;
  selfcheck::quarantine(v, Cause::kInjected);

  // The recovery machinery itself is fault-injectable: an injected
  // health.probe failure behaves exactly like a genuinely failed probe.
  health::expire_cooldowns();
  fault::arm(fault::Site::kHealthProbe, fault::Mode::kEveryN, 1);
  EXPECT_FALSE(selfcheck::try_recover_quarantined());
  fault::disarm_all();
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kQuarantined);
  EXPECT_EQ(health::state(Component::kKernels), State::kDegraded);
  EXPECT_EQ(health::component_report(Component::kKernels).backoff_ms,
            base * 2)
      << "a failed probation must double the cool-down";
  EXPECT_GE(robustness_stats().probation_failures, 1u);

  // With the fault gone the next probation restores the variant.
  health::expire_cooldowns();
  EXPECT_TRUE(selfcheck::try_recover_quarantined());
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kVerified);
}

TEST_F(HealthTest, KernelPassiveVariantOkRecovers) {
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  const selfcheck::Variant v = selfcheck::Variant::kMainF64DirectDirect;
  selfcheck::quarantine(v, Cause::kMismatch);
  ASSERT_FALSE(selfcheck::variant_ok(v))
      << "cool-down still pending: dispatch keeps routing around it";

  health::expire_cooldowns();
  // No prober, no explicit recover call: dispatching the quarantined
  // variant is itself the probation trigger.
  EXPECT_TRUE(selfcheck::variant_ok(v));
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kVerified);
  EXPECT_EQ(health::state(Component::kKernels), State::kHealthy);
}

// ---------------------------------------------------------------------------
// Thread-pool recovery (spawn-narrowed width re-expansion)
// ---------------------------------------------------------------------------

TEST_F(HealthTest, PoolRespawnRestoresWidth) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kFailAfter, 1);
  ThreadPool pool(4);
  fault::disarm_all();
  ASSERT_EQ(pool.max_threads(), 2)
      << "second spawn fails: slot 1 runs, slots 2-3 stay threadless";
  EXPECT_EQ(health::state(Component::kThreadPool), State::kDegraded);
  EXPECT_EQ(health::cause(Component::kThreadPool), Cause::kInjected);

  EXPECT_TRUE(pool.try_recover());
  EXPECT_EQ(pool.max_threads(), 4)
      << "recovery must re-attach threads to the allocated slots";
  // The restored width genuinely executes 4-way rounds.
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&ran](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST_F(HealthTest, PoolRespawnFaultKeepsNarrowWidth) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kFailAfter, 1);
  ThreadPool pool(4);
  fault::disarm_all();
  ASSERT_EQ(pool.max_threads(), 2);

  // The respawn probe itself is fault-injectable and fails closed: the
  // pool keeps the width it has, never a half-attached worker.
  fault::arm(fault::Site::kHealthRespawn, fault::Mode::kEveryN, 1);
  EXPECT_FALSE(pool.try_recover());
  fault::disarm_all();
  EXPECT_EQ(pool.max_threads(), 2);

  EXPECT_TRUE(pool.try_recover());
  EXPECT_EQ(pool.max_threads(), 4);
}

TEST_F(HealthTest, PoolGlobalHookRunsProbation) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  // Narrow a pool so the component degrades, and degrade a hook-less
  // component alongside it.
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kFailAfter, 1);
  ThreadPool pool(4);
  fault::disarm_all();
  ASSERT_EQ(health::state(Component::kThreadPool), State::kDegraded);
  health::report_degraded(Component::kPlanCache, Cause::kOverload);

  health::expire_cooldowns();
  EXPECT_GE(health::recover_now(), 1)
      << "the registered kThreadPool hook must run its probation";
  EXPECT_EQ(health::state(Component::kThreadPool), State::kHealthy);
  EXPECT_GE(robustness_stats().probation_probes, 1u);
  EXPECT_GE(robustness_stats().recoveries, 1u);
  // The plan cache registers no hook (its recovery is passive, on the
  // next successful build), so recover_now leaves it degraded.
  EXPECT_EQ(health::state(Component::kPlanCache), State::kDegraded);
}

// ---------------------------------------------------------------------------
// Stream breaker recovery (half-open trials)
// ---------------------------------------------------------------------------

/// Latches `stream`'s breaker deterministically: breaker_threshold must
/// be 1 and retry_budget 0; one armed submit.queue failure trips it.
void latch_stream(engine::GemmStream& stream) {
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);
  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 1);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f,
                                    p.a.data(), p.a.ld(), p.b.data(),
                                    p.b.ld(), 0.0f, p.c.data(), p.c.ld()),
               std::bad_alloc);
  fault::disarm_all();
  ASSERT_EQ(stream.health(), engine::StreamHealth::kDegraded);
}

TEST_F(HealthTest, BreakerHalfOpenClosesAfterCleanTrials) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  if (!breaker_wait_affordable())
    GTEST_SKIP() << "SHALOM_RECOVERY_MS too large to sleep out";
  const long base = health::env_recovery_ms();
  const long n = health::env_probation_n();

  engine::StreamOptions opts;
  opts.retry_budget = 0;
  opts.breaker_threshold = 1;
  engine::GemmStream stream(opts);
  latch_stream(stream);
  EXPECT_EQ(health::state(Component::kStreamBreaker), State::kDegraded);

  // Inside the cool-down the stream serves inline: degraded status, but
  // bitwise-correct work (acceptance mid-recovery must never be wrong).
  testing::Problem<float> inline_p({Trans::N, Trans::T}, 24, 18, 12);
  engine::TicketPtr inline_t = stream.submit<float>(
      inline_p.mode, inline_p.m, inline_p.n, inline_p.k, 1.0f,
      inline_p.a.data(), inline_p.a.ld(), inline_p.b.data(),
      inline_p.b.ld(), 0.0f, inline_p.c.data(), inline_p.c.ld());
  EXPECT_EQ(inline_t->wait(), SHALOM_DEGRADED);
  inline_p.run_reference(1.0f, 0.0f);
  inline_p.expect_matches("inline while latched");

  sleep_ms(base + 150);  // cool-down elapses: the breaker goes half-open
  std::vector<testing::Problem<float>> trials;
  std::vector<engine::TicketPtr> tickets;
  trials.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    trials.emplace_back(Mode{Trans::N, Trans::N}, 20, 20, 20);
    testing::Problem<float>& p = trials.back();
    tickets.push_back(stream.submit<float>(
        p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
        p.b.ld(), 0.0f, p.c.data(), p.c.ld()));
    if (i == 0 && n > 1) {
      EXPECT_EQ(stream.health(), engine::StreamHealth::kRecovering)
          << "mid-streak the stream must advertise the half-open trials";
    }
  }
  EXPECT_EQ(stream.flush(), SHALOM_OK)
      << "the clean trial streak must close the breaker";
  EXPECT_EQ(stream.health(), engine::StreamHealth::kOk);
  EXPECT_EQ(health::state(Component::kStreamBreaker), State::kHealthy);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    ASSERT_EQ(tickets[i]->wait(), SHALOM_OK)
        << "trial requests run through the real queue";
    trials[i].run_reference(1.0f, 0.0f);
    trials[i].expect_matches("half-open trial");
  }
  const RobustnessStats rs = robustness_stats();
  EXPECT_GE(rs.breaker_half_opens, 1u);
  EXPECT_GE(rs.recoveries, 1u);
  EXPECT_GE(rs.probation_probes, static_cast<std::uint64_t>(n));
}

TEST_F(HealthTest, BreakerTrialFailureReopensWithDoubledBackoff) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  if (health::env_recovery_ms() > 1000)
    GTEST_SKIP() << "SHALOM_RECOVERY_MS too large to sleep out twice";
  const long base = health::env_recovery_ms();
  const long n = health::env_probation_n();

  engine::StreamOptions opts;
  opts.retry_budget = 0;
  opts.breaker_threshold = 1;
  engine::GemmStream stream(opts);
  latch_stream(stream);

  // First half-open trial hits the same transient fault: the breaker
  // re-opens, the request falls back inline with a correct result.
  sleep_ms(base + 150);
  testing::Problem<float> p({Trans::N, Trans::N}, 20, 20, 20);
  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 1);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  fault::disarm_all();
  EXPECT_EQ(t->wait(), SHALOM_DEGRADED)
      << "a failed trial falls back to inline execution";
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("failed trial served inline");
  EXPECT_EQ(stream.health(), engine::StreamHealth::kDegraded);
  EXPECT_GE(robustness_stats().probation_failures, 1u);

  // The cool-down doubled: after only the base wait the breaker must
  // still be closed to trials (submits keep running inline).
  sleep_ms(base / 2);
  testing::Problem<float> still({Trans::N, Trans::N}, 16, 16, 16);
  engine::TicketPtr ts = stream.submit<float>(
      still.mode, still.m, still.n, still.k, 1.0f, still.a.data(),
      still.a.ld(), still.b.data(), still.b.ld(), 0.0f, still.c.data(),
      still.c.ld());
  EXPECT_EQ(ts->wait(), SHALOM_DEGRADED)
      << "inside the doubled cool-down every submit stays inline";

  // After the doubled cool-down a clean streak closes the breaker.
  sleep_ms(2 * base + 200);
  std::vector<testing::Problem<float>> trials;
  std::vector<engine::TicketPtr> tickets;
  for (long i = 0; i < n; ++i) {
    trials.emplace_back(Mode{Trans::N, Trans::N}, 20, 20, 20);
    testing::Problem<float>& q = trials.back();
    tickets.push_back(stream.submit<float>(
        q.mode, q.m, q.n, q.k, 1.0f, q.a.data(), q.a.ld(), q.b.data(),
        q.b.ld(), 0.0f, q.c.data(), q.c.ld()));
  }
  EXPECT_EQ(stream.flush(), SHALOM_OK);
  EXPECT_EQ(stream.health(), engine::StreamHealth::kOk);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    ASSERT_EQ(tickets[i]->wait(), SHALOM_OK);
    trials[i].run_reference(1.0f, 0.0f);
    trials[i].expect_matches("trial after doubled cool-down");
  }
}

TEST_F(HealthTest, BreakerSynchronousStreamStaysLatched) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (!breaker_wait_affordable())
    GTEST_SKIP() << "SHALOM_RECOVERY_MS too large to sleep out";
  // A drainer-spawn failure has no queue to probe back into: the stream
  // is synchronous for life and never advertises RECOVERING.
  engine::StreamOptions opts;
  opts.retry_budget = 0;
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kEveryN, 1);
  engine::GemmStream stream(opts);
  fault::disarm_all();
  ASSERT_EQ(stream.health(), engine::StreamHealth::kDegraded);

  sleep_ms(health::env_recovery_ms() + 150);
  testing::Problem<float> p({Trans::N, Trans::N}, 24, 24, 24);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), SHALOM_DEGRADED);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("synchronous stream after cool-down");
  EXPECT_EQ(stream.health(), engine::StreamHealth::kDegraded)
      << "no way back: a spawn-degraded stream never goes half-open";
  EXPECT_EQ(robustness_stats().breaker_half_opens, 0u);
}

// ---------------------------------------------------------------------------
// Prober lifecycle
// ---------------------------------------------------------------------------

TEST_F(HealthTest, ProberStartStopLifecycle) {
  health::Prober prober(health::ProberOptions{20});
  EXPECT_FALSE(prober.running());
  prober.stop();  // stop when idle is a no-op
  EXPECT_TRUE(prober.start());
  EXPECT_TRUE(prober.running());
  EXPECT_FALSE(prober.start()) << "already running";
  prober.kick();
  for (int i = 0; i < 200 && prober.ticks() == 0; ++i) sleep_ms(5);
  EXPECT_GE(prober.ticks(), 1u);
  prober.stop();
  EXPECT_FALSE(prober.running());
  prober.stop();  // idempotent
  // Restartable after a stop.
  EXPECT_TRUE(prober.start());
  prober.stop();
}

TEST_F(HealthTest, ProberTickRecoversQuarantinedKernel) {
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";
  const selfcheck::Variant v = selfcheck::Variant::kFusedTnF64;
  selfcheck::quarantine(v, Cause::kInjected);
  ASSERT_EQ(health::state(Component::kKernels), State::kDegraded);

  // recover_now() (each tick) expires pending cool-downs itself, so the
  // prober heals the variant without the test sleeping out the base.
  health::Prober prober(health::ProberOptions{10});
  ASSERT_TRUE(prober.start());
  prober.kick();
  for (int i = 0; i < 300; ++i) {
    if (selfcheck::status(v) == selfcheck::Status::kVerified) break;
    sleep_ms(10);
  }
  prober.stop();
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kVerified);
  EXPECT_EQ(health::state(Component::kKernels), State::kHealthy);
  EXPECT_GE(robustness_stats().recoveries, 1u);
  EXPECT_GE(prober.ticks(), 1u);
}

// TSan target: prober start/stop/kick racing stream submitters and raw
// registry transitions must be clean, and every accepted result correct.
TEST_F(HealthTest, ProberTeardownRacesSubmitters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  engine::GemmStream stream;
  health::Prober prober(health::ProberOptions{5});
  ASSERT_TRUE(prober.start());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&stream, &failures, ti] {
      for (int i = 0; i < kPerThread; ++i) {
        testing::Problem<float> p({Trans::N, Trans::N}, 24, 24,
                                  16 + (ti + i) % 8);
        engine::TicketPtr t = stream.submit<float>(
            p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
            p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld());
        const int rc = t->wait();
        if (rc != SHALOM_OK && rc != SHALOM_DEGRADED) failures.fetch_add(1);
        p.run_reference(1.0f, 0.0f);
        if (!matches_reference(p)) failures.fetch_add(1);
      }
    });
  }
  // Registry churn racing the prober's recover_now sweep.
  std::thread churn([] {
    for (int i = 0; i < 200; ++i) {
      health::report_degraded(Component::kTunedTable, Cause::kOverload);
      health::report_recovered(Component::kTunedTable);
    }
  });
  prober.kick();
  prober.stop();  // teardown races the submitters: must drain cleanly
  ASSERT_TRUE(prober.start());
  prober.kick();
  for (auto& t : threads) t.join();
  churn.join();
  prober.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stream.flush(), SHALOM_OK);
}

// ---------------------------------------------------------------------------
// C surface
// ---------------------------------------------------------------------------

TEST_F(HealthTest, CApiHealthReportReflectsRegistry) {
  EXPECT_EQ(shalom_health_report(nullptr), SHALOM_ERR_NULL_POINTER);

  shalom_health report;
  ASSERT_EQ(shalom_health_report(&report), SHALOM_OK);
  EXPECT_EQ(report.all_healthy, 1);
  for (int c = 0; c < SHALOM_HEALTH_COMPONENT_COUNT; ++c) {
    EXPECT_EQ(report.components[c].state, SHALOM_HEALTH_HEALTHY);
    EXPECT_EQ(report.components[c].cause, SHALOM_HEALTH_CAUSE_NONE);
    EXPECT_EQ(report.components[c].cooldown_remaining_ms, 0u);
  }

  health::report_degraded(Component::kPlanCache, Cause::kOverload);
  ASSERT_EQ(shalom_health_report(&report), SHALOM_OK);
  EXPECT_EQ(report.all_healthy, 0);
  const shalom_health_component& pc =
      report.components[SHALOM_HEALTH_PLAN_CACHE];
  EXPECT_EQ(pc.state, SHALOM_HEALTH_DEGRADED);
  EXPECT_EQ(pc.cause, SHALOM_HEALTH_CAUSE_OVERLOAD);
  if (health::recovery_enabled()) {
    const std::uint64_t base =
        static_cast<std::uint64_t>(health::env_recovery_ms());
    EXPECT_EQ(pc.backoff_ms, base);
    EXPECT_LE(pc.cooldown_remaining_ms, base);
    EXPECT_GT(pc.cooldown_remaining_ms, 0u);
  }

  health::report_recovered(Component::kPlanCache);
  ASSERT_EQ(shalom_health_report(&report), SHALOM_OK);
  EXPECT_EQ(report.all_healthy, 1);
}

TEST_F(HealthTest, CApiRecoverNowRunsHooks) {
  if (!health::recovery_enabled())
    GTEST_SKIP() << "covered by RecoveryDisabledPreservesPermanentLatch";
  const selfcheck::Variant v = selfcheck::Variant::kEdgeF32TransDirect;
  selfcheck::quarantine(v, Cause::kMismatch);
  ASSERT_EQ(health::state(Component::kKernels), State::kDegraded);
  EXPECT_GE(shalom_recover_now(), 1)
      << "the kernels hook must re-probe and restore the variant";
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kVerified);
  EXPECT_EQ(health::state(Component::kKernels), State::kHealthy);
}

TEST_F(HealthTest, CApiStatsExposeRecoveryCounters) {
  health::report_degraded(Component::kTunedTable, Cause::kOverload);
  health::report_recovered(Component::kTunedTable);
  (void)health::probe_faulted();  // counts one probation probe

  shalom_stats s;
  shalom_get_stats(&s);
  EXPECT_EQ(s.recoveries, 1u);
  EXPECT_GE(s.probation_probes, 1u);
  EXPECT_EQ(s.breaker_half_opens, 0u);
  EXPECT_EQ(s.probation_failures, 0u);

  if (health::recovery_enabled()) {
    health::report_degraded(Component::kTunedTable, Cause::kOverload);
    health::expire_cooldowns();
    ASSERT_TRUE(health::try_begin_probation(Component::kTunedTable));
    health::probation_failed(Component::kTunedTable);
    shalom_get_stats(&s);
    EXPECT_EQ(s.probation_failures, 1u);
  }
}

// The tier-1 recovery-chaos acceptance scenario: serve through an
// ambient fault storm (SHALOM_FAULT arms kernel-probe, worker-spawn and
// submit-enqueue failures from the environment), then disarm and require
// the process to heal itself completely - at least one recovery
// observed, every component back to HEALTHY, and accepted work correct
// throughout. Run bare this test skips; scripts/tier1.sh runs it with
// the storm armed.
TEST(RecoveryChaos, DegradesUnderAmbientFaultsThenHeals) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (env::raw("SHALOM_FAULT") == nullptr)
    GTEST_SKIP() << "run via the tier-1 recovery-chaos stage";
  if (!health::recovery_enabled())
    GTEST_SKIP() << "recovery disabled (SHALOM_RECOVERY_MS=0)";

  selfcheck::reset_for_testing();
  health::reset_for_testing();
  robustness_stats_reset();

  // Phase A: degrade. The eager sweep probes all 29 variants with the
  // probe site firing every N, so a batch of them quarantines.
  int quarantined = selfcheck::run_all();
  if (quarantined == 0) {
    // Storm spec without selfcheck.probe: degrade a kernel by hand so
    // the healing phase always has kernel work to do.
    selfcheck::quarantine(selfcheck::Variant::kMainF32PackedPacked,
                          Cause::kInjected);
    quarantined = 1;
  }
  {
    engine::GemmStream stream;
    std::vector<testing::Problem<float>> ps;
    std::vector<engine::TicketPtr> tickets;
    ps.reserve(24);
    for (int i = 0; i < 24; ++i) {
      ps.emplace_back(Mode{Trans::N, Trans::N}, 20 + i % 5, 24, 16);
      testing::Problem<float>& p = ps.back();
      try {
        tickets.push_back(stream.submit<float>(
            p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
            p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld()));
      } catch (const std::bad_alloc&) {
        tickets.push_back(nullptr);  // retry budget exhausted: shed
      }
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (tickets[i] == nullptr) continue;
      const int rc = tickets[i]->wait();
      ASSERT_TRUE(rc == SHALOM_OK || rc == SHALOM_DEGRADED)
          << "mid-storm status " << rc;
      ps[i].run_reference(1.0f, 0.0f);
      ps[i].expect_matches("accepted mid-storm");
    }
  }  // stream gone: a latched breaker leaves the census here
  EXPECT_FALSE(health::all_healthy())
      << "the storm must have degraded at least the kernels component";

  // Phase B: the storm passes; the process must heal completely.
  fault::disarm_all();
  for (int i = 0; i < 50 && !health::all_healthy(); ++i)
    (void)shalom_recover_now();
  EXPECT_TRUE(health::all_healthy())
      << "every component must return to HEALTHY once faults stop";
  shalom_health report;
  ASSERT_EQ(shalom_health_report(&report), SHALOM_OK);
  EXPECT_EQ(report.all_healthy, 1);
  EXPECT_GT(robustness_stats().recoveries, 0u);

  // Recovered-path correctness: post-heal work is full-service and
  // matches the oracle.
  engine::GemmStream healed;
  testing::Problem<float> p({Trans::T, Trans::N}, 40, 40, 40);
  engine::TicketPtr t = healed.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), SHALOM_OK);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("post-heal full service");
}

}  // namespace
}  // namespace shalom
