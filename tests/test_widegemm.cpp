// Tests for the Section 5.5 wide-vector port: the analytic model's
// revised tiles at longer lane counts, the wide SIMD types, and the wide
// GEMM driver against the oracle at every width.
#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "common/rng.h"
#include "core/widegemm.h"

namespace shalom::wide {
namespace {

TEST(WideModel, RevisedTilesMatchEq1) {
  // The hardcoded kernel tiles must be what Eq. 1/2 yields at each lane
  // count (this is the paper's "revised mr and nr" recipe).
  const auto t256 = model::solve_tile(32, 8);
  EXPECT_EQ(t256.mr, WideTile<256>::kMr);
  EXPECT_EQ(t256.nr, WideTile<256>::kNrv * 8);
  const auto t512 = model::solve_tile(32, 16);
  EXPECT_EQ(t512.mr, WideTile<512>::kMr);
  EXPECT_EQ(t512.nr, WideTile<512>::kNrv * 16);
  const auto t128 = model::solve_tile(32, 4);
  EXPECT_EQ(t128.mr, WideTile<128>::kMr);
  EXPECT_EQ(t128.nr, WideTile<128>::kNrv * 4);
}

TEST(WideModel, CmrGrowsWithWidth) {
  EXPECT_GT(model::tile_cmr(WideTile<256>::kMr, WideTile<256>::kNrv * 8),
            model::tile_cmr(WideTile<128>::kMr, WideTile<128>::kNrv * 4));
  EXPECT_GT(model::tile_cmr(WideTile<512>::kMr, WideTile<512>::kNrv * 16),
            model::tile_cmr(WideTile<256>::kMr, WideTile<256>::kNrv * 8));
}

TEST(WideSimd, RoundTripsAndFma) {
  float src[16], dst[16];
  for (int i = 0; i < 16; ++i) src[i] = static_cast<float>(i) * 0.5f;

  const auto v8 = simd::load8(src);
  simd::store8(dst, v8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], src[i]);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(simd::extract8(v8, i), src[i]);

  const auto v16 = simd::load16(src);
  simd::store16(dst, v16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(dst[i], src[i]);

  const auto r8 =
      simd::fmadd(simd::broadcast8(1.f), v8, simd::broadcast8(2.f));
  for (int i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(simd::extract8(r8, i), 1.f + src[i] * 2.f);
  const auto r16 =
      simd::fmadd(simd::broadcast16(1.f), v16, simd::broadcast16(-1.f));
  for (int i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(simd::extract16(r16, i), 1.f - src[i]);
}

TEST(WideSimd, PartialOps) {
  float src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto v = simd::load8_partial(src, 5);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(simd::extract8(v, i), i < 5 ? src[i] : 0.f);
  float dst[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  simd::store8_partial(dst, v, 3);
  EXPECT_EQ(dst[2], 3.f);
  EXPECT_EQ(dst[3], -1.f);
}

template <int Bits>
void check_wide_gemm(index_t m, index_t n, index_t k, float alpha,
                     float beta) {
  Matrix<float> a(m, k), b(k, n), c(m, n), c_ref(m, n);
  fill_random(a, 1);
  fill_random(b, 2);
  fill_random(c, 3);
  c_ref = c;
  gemm_wide<Bits>(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                  c.data(), c.ld());
  baselines::naive_gemm({Trans::N, Trans::N}, m, n, k, alpha, a.data(),
                        a.ld(), b.data(), b.ld(), beta, c_ref.data(),
                        c_ref.ld());
  const double tol = (k + 16.0) * 1e-6;
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j)
      ASSERT_NEAR(c(i, j), c_ref(i, j), tol)
          << Bits << "-bit at (" << i << "," << j << ") m=" << m
          << " n=" << n << " k=" << k;
}

class WideGemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WideGemmSweep, MatchesOracleAllWidths) {
  const auto [m, n, k] = GetParam();
  check_wide_gemm<128>(m, n, k, 1.f, 0.f);
  check_wide_gemm<256>(m, n, k, 1.5f, 0.5f);
  check_wide_gemm<512>(m, n, k, -1.f, 1.f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WideGemmSweep,
    ::testing::Combine(::testing::Values(1, 9, 15, 16, 40, 100),
                       ::testing::Values(1, 15, 16, 17, 33, 100),
                       ::testing::Values(1, 8, 37, 120)));

TEST(WideGemm, LargerProblemAcrossBlocks) {
  check_wide_gemm<256>(200, 300, 600, 1.f, 0.f);
  check_wide_gemm<512>(200, 300, 600, 1.f, 0.f);
}

}  // namespace
}  // namespace shalom::wide
