// Randomized property tests: several hundred GEMM problems with random
// shapes, modes, scalars, paddings, thread counts and feature flags, all
// checked against the naive oracle. Complements the structured sweeps in
// test_gemm_correctness.cpp by exploring the parameter space jointly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/shalom.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

struct RandomCase {
  Mode mode;
  index_t m, n, k;
  float alpha, beta;
  index_t pad;
  Config cfg;
};

RandomCase draw(SplitMix64& rng, bool irregular) {
  RandomCase c;
  c.mode.a = rng.next_u64() % 2 ? Trans::T : Trans::N;
  c.mode.b = rng.next_u64() % 2 ? Trans::T : Trans::N;
  if (irregular) {
    c.m = 1 + rng.next_u64() % 48;
    c.n = 64 + rng.next_u64() % 700;
    c.k = 32 + rng.next_u64() % 500;
    if (rng.next_u64() % 2) std::swap(c.m, c.n);
  } else {
    c.m = 1 + rng.next_u64() % 40;
    c.n = 1 + rng.next_u64() % 40;
    c.k = 1 + rng.next_u64() % 40;
  }
  const float alphas[] = {0.f, 1.f, -1.f, 0.75f};
  const float betas[] = {0.f, 1.f, -0.5f, 2.f};
  c.alpha = alphas[rng.next_u64() % 4];
  c.beta = betas[rng.next_u64() % 4];
  c.pad = rng.next_u64() % 9;
  c.cfg.selective_packing = rng.next_u64() % 4 != 0;
  c.cfg.fused_packing = rng.next_u64() % 4 != 0;
  c.cfg.optimized_edges = rng.next_u64() % 4 != 0;
  c.cfg.threads = 1 + static_cast<int>(rng.next_u64() % 4);
  return c;
}

void run_case(const RandomCase& c, int iteration) {
  testing::Problem<float> p(c.mode, c.m, c.n, c.k, c.pad, c.pad, c.pad);
  gemm(c.mode.a, c.mode.b, p.m, p.n, p.k, c.alpha, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), c.beta, p.c.data(), p.c.ld(), c.cfg);
  p.run_reference(c.alpha, c.beta);
  SCOPED_TRACE(::testing::Message()
               << "iteration " << iteration << " m=" << c.m << " n=" << c.n
               << " k=" << c.k << " alpha=" << c.alpha << " beta=" << c.beta
               << " pad=" << c.pad << " threads=" << c.cfg.threads
               << " flags=" << c.cfg.selective_packing
               << c.cfg.fused_packing << c.cfg.optimized_edges);
  p.expect_matches("property");
}

TEST(GemmProperty, RandomSmallProblems) {
  SplitMix64 rng(20260705);
  for (int i = 0; i < 200; ++i) run_case(draw(rng, false), i);
}

TEST(GemmProperty, RandomIrregularProblems) {
  SplitMix64 rng(424242);
  for (int i = 0; i < 60; ++i) run_case(draw(rng, true), i);
}

TEST(GemmProperty, RepeatedCallsAreDeterministic) {
  // Same inputs -> bit-identical outputs, serial and parallel.
  testing::Problem<float> p1({Trans::N, Trans::T}, 33, 450, 210);
  testing::Problem<float> p2({Trans::N, Trans::T}, 33, 450, 210);
  Config cfg;
  cfg.threads = 4;
  gemm(Trans::N, Trans::T, p1.m, p1.n, p1.k, 1.f, p1.a.data(), p1.a.ld(),
       p1.b.data(), p1.b.ld(), 0.f, p1.c.data(), p1.c.ld(), cfg);
  gemm(Trans::N, Trans::T, p2.m, p2.n, p2.k, 1.f, p2.a.data(), p2.a.ld(),
       p2.b.data(), p2.b.ld(), 0.f, p2.c.data(), p2.c.ld(), cfg);
  for (index_t i = 0; i < p1.m; ++i)
    for (index_t j = 0; j < p1.n; ++j)
      ASSERT_EQ(p1.c(i, j), p2.c(i, j)) << i << "," << j;
}

}  // namespace
}  // namespace shalom
