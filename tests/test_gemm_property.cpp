// Randomized property tests: several hundred GEMM problems with random
// shapes, modes, scalars (including zero, +/-1 and NaN-free denormals),
// paddings (including non-contiguous ldc > N), thread counts and feature
// flags, all checked against the naive oracle. Every case runs through
// BOTH the per-call direct driver and the shape-keyed plan-cache path and
// the two must agree bitwise. Complements the structured sweeps in
// test_gemm_correctness.cpp by exploring the parameter space jointly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/fault.h"
#include "common/rng.h"
#include "core/shalom.h"
#include "core/shalom_c.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

struct RandomCase {
  Mode mode;
  index_t m, n, k;
  float alpha, beta;
  index_t pad, pad_c;
  Config cfg;
};

// Positive/negative single-precision denormals (smallest normal float is
// ~1.18e-38): exercises the scaling paths' behaviour on subnormal inputs
// without introducing NaNs or infinities.
constexpr float kDenormPos = 6.0e-39f;
constexpr float kDenormNeg = -4.0e-40f;

RandomCase draw(SplitMix64& rng, bool irregular) {
  RandomCase c;
  c.mode.a = rng.next_u64() % 2 ? Trans::T : Trans::N;
  c.mode.b = rng.next_u64() % 2 ? Trans::T : Trans::N;
  if (irregular) {
    c.m = 1 + rng.next_u64() % 48;
    c.n = 64 + rng.next_u64() % 700;
    c.k = 32 + rng.next_u64() % 500;
    if (rng.next_u64() % 2) std::swap(c.m, c.n);
  } else {
    c.m = 1 + rng.next_u64() % 40;
    c.n = 1 + rng.next_u64() % 40;
    c.k = 1 + rng.next_u64() % 40;
  }
  const float alphas[] = {0.f, 1.f, -1.f, 0.75f, kDenormPos, kDenormNeg};
  const float betas[] = {0.f, 1.f, -1.f, -0.5f, 2.f, kDenormPos};
  c.alpha = alphas[rng.next_u64() % 6];
  c.beta = betas[rng.next_u64() % 6];
  c.pad = rng.next_u64() % 9;
  // Every fourth case gets a strongly non-contiguous C (ldc >> N), the
  // sliced-output layout im2col/batch windows produce.
  c.pad_c = rng.next_u64() % 4 == 0 ? 17 + rng.next_u64() % 32
                                    : rng.next_u64() % 9;
  c.cfg.selective_packing = rng.next_u64() % 4 != 0;
  c.cfg.fused_packing = rng.next_u64() % 4 != 0;
  c.cfg.optimized_edges = rng.next_u64() % 4 != 0;
  c.cfg.threads = 1 + static_cast<int>(rng.next_u64() % 4);
  return c;
}

void run_case(const RandomCase& c, int iteration) {
  SCOPED_TRACE(::testing::Message()
               << "iteration " << iteration << " m=" << c.m << " n=" << c.n
               << " k=" << c.k << " alpha=" << c.alpha << " beta=" << c.beta
               << " pad=" << c.pad << " pad_c=" << c.pad_c
               << " threads=" << c.cfg.threads
               << " flags=" << c.cfg.selective_packing
               << c.cfg.fused_packing << c.cfg.optimized_edges);

  // Identically seeded problems: one through the per-call direct driver,
  // one through the plan-cache path.
  testing::Problem<float> direct(c.mode, c.m, c.n, c.k, c.pad, c.pad,
                                 c.pad_c);
  testing::Problem<float> planned(c.mode, c.m, c.n, c.k, c.pad, c.pad,
                                  c.pad_c);

  Config direct_cfg = c.cfg;
  direct_cfg.use_plan_cache = false;
  gemm(c.mode.a, c.mode.b, direct.m, direct.n, direct.k, c.alpha,
       direct.a.data(), direct.a.ld(), direct.b.data(), direct.b.ld(),
       c.beta, direct.c.data(), direct.c.ld(), direct_cfg);

  Config plan_cfg = c.cfg;
  plan_cfg.use_plan_cache = true;
  gemm(c.mode.a, c.mode.b, planned.m, planned.n, planned.k, c.alpha,
       planned.a.data(), planned.a.ld(), planned.b.data(), planned.b.ld(),
       c.beta, planned.c.data(), planned.c.ld(), plan_cfg);

  direct.run_reference(c.alpha, c.beta);
  direct.expect_matches("property (direct path)");

  // The plan path snapshots the same decisions and runs the same loops:
  // bitwise agreement, not just tolerance agreement.
  for (index_t i = 0; i < c.m; ++i)
    for (index_t j = 0; j < c.n; ++j)
      ASSERT_EQ(direct.c(i, j), planned.c(i, j))
          << "plan path diverged at (" << i << "," << j << ")";
}

TEST(GemmProperty, RandomSmallProblems) {
  SplitMix64 rng(20260705);
  for (int i = 0; i < 200; ++i) run_case(draw(rng, false), i);
}

TEST(GemmProperty, RandomIrregularProblems) {
  SplitMix64 rng(424242);
  for (int i = 0; i < 60; ++i) run_case(draw(rng, true), i);
}

TEST(GemmProperty, DenormalScalarsWithWideLdc) {
  // Structured companion to the random sweep: every mode, denormal
  // alpha/beta combinations, C strongly non-contiguous (ldc = N + 21).
  const float scalars[] = {0.f, 1.f, -1.f, kDenormPos, kDenormNeg};
  int iteration = 0;
  for (const Mode mode : testing::kAllModes) {
    for (float alpha : scalars) {
      for (float beta : scalars) {
        RandomCase c;
        c.mode = mode;
        c.m = 9;
        c.n = 14;
        c.k = 11;
        c.alpha = alpha;
        c.beta = beta;
        c.pad = 0;
        c.pad_c = 21;
        c.cfg = Config{};
        run_case(c, iteration++);
      }
    }
  }
}

TEST(GemmProperty, DegenerateShapesShortCircuit) {
  // M==0 / N==0: success, C untouched. K==0: success, C = beta*C exactly
  // (beta==1 leaves C bitwise untouched; beta==0 writes zeros even over
  // NaN garbage). None of these may reach the packing/plan machinery -
  // verified indirectly: the plan cache gains no entries and no fallback
  // telemetry fires.
  struct Shape {
    index_t m, n, k;
  };
  const Shape shapes[] = {{0, 5, 3}, {5, 0, 3}, {5, 4, 0}, {0, 0, 0},
                          {3, 3, 0}, {0, 0, 7}};
  const float betas[] = {0.f, 1.f, -0.5f, 2.f};
  robustness_stats_reset();
  const std::size_t cache_before = PlanCache<float>::global().stats().size;

  for (const Mode mode : testing::kAllModes) {
    for (const Shape& s : shapes) {
      for (float beta : betas) {
        for (int threads : {1, 3}) {
          SCOPED_TRACE(::testing::Message()
                       << "m=" << s.m << " n=" << s.n << " k=" << s.k
                       << " beta=" << beta << " threads=" << threads
                       << " mode=" << (mode.a == Trans::N ? "N" : "T")
                       << (mode.b == Trans::N ? "N" : "T"));
          // Matrices sized max(dim, 1) so pointers stay valid; the NaN
          // prefill proves K==0/beta==0 never *reads* C and M==0/N==0
          // never *writes* it. A/B storage shapes follow the mode.
          const index_t mr = std::max<index_t>(s.m, 1);
          const index_t nr = std::max<index_t>(s.n, 1);
          const index_t kr = std::max<index_t>(s.k, 1);
          const index_t a_rows = (mode.a == Trans::N) ? mr : kr;
          const index_t a_cols = (mode.a == Trans::N) ? kr : mr;
          const index_t b_rows = (mode.b == Trans::N) ? kr : nr;
          const index_t b_cols = (mode.b == Trans::N) ? nr : kr;
          Matrix<float> a(a_rows, a_cols, a_cols), b(b_rows, b_cols, b_cols),
              c(mr, nr, nr);
          fill_random(a, 1);
          fill_random(b, 2);
          fill_random(c, 3);
          Matrix<float> c_before = c;
          if (s.k == 0 && beta == 0.f)
            for (index_t i = 0; i < s.m; ++i)
              for (index_t j = 0; j < s.n; ++j)
                c(i, j) = std::numeric_limits<float>::quiet_NaN();

          Config cfg;
          cfg.threads = threads;
          ASSERT_NO_THROW(gemm(mode.a, mode.b, s.m, s.n, s.k, 1.5f,
                               a.data(), a.ld(), b.data(), b.ld(), beta,
                               c.data(), c.ld(), cfg));

          for (index_t i = 0; i < s.m; ++i) {
            for (index_t j = 0; j < s.n; ++j) {
              if (s.k != 0) {
                FAIL() << "only K==0 shapes reach the write check";
              } else if (beta == 0.f) {
                ASSERT_EQ(c(i, j), 0.f);
              } else {
                ASSERT_EQ(c(i, j), beta * c_before(i, j));
              }
            }
          }
          // M==0/N==0: nothing at all was written (probe the full alloc).
          if (s.m == 0 || s.n == 0) {
            for (index_t i = 0; i < mr; ++i)
              for (index_t j = 0; j < nr; ++j)
                ASSERT_EQ(std::memcmp(&c(i, j), &c_before(i, j),
                                      sizeof(float)),
                          0);
          }

          // The C ABI agrees: SHALOM_OK, same semantics.
          Matrix<float> cc = c_before;
          ASSERT_EQ(shalom_sgemm(mode.a == Trans::N ? 'N' : 'T',
                                 mode.b == Trans::N ? 'N' : 'T', s.m, s.n,
                                 s.k, 1.5f, a.data(), a.ld(), b.data(),
                                 b.ld(), beta, cc.data(), cc.ld(), threads),
                    SHALOM_OK);
        }
      }
    }
  }

  // No degenerate call may have built/cached a plan or degraded anything.
  EXPECT_EQ(PlanCache<float>::global().stats().size, cache_before);
  const RobustnessStats after = robustness_stats();
  EXPECT_EQ(after.fallback_nopack, 0u);
  EXPECT_EQ(after.threads_degraded, 0u);
}

TEST(GemmProperty, RepeatedCallsAreDeterministic) {
  // Same inputs -> bit-identical outputs, serial and parallel.
  testing::Problem<float> p1({Trans::N, Trans::T}, 33, 450, 210);
  testing::Problem<float> p2({Trans::N, Trans::T}, 33, 450, 210);
  Config cfg;
  cfg.threads = 4;
  gemm(Trans::N, Trans::T, p1.m, p1.n, p1.k, 1.f, p1.a.data(), p1.a.ld(),
       p1.b.data(), p1.b.ld(), 0.f, p1.c.data(), p1.c.ld(), cfg);
  gemm(Trans::N, Trans::T, p2.m, p2.n, p2.k, 1.f, p2.a.data(), p2.a.ld(),
       p2.b.data(), p2.b.ld(), 0.f, p2.c.data(), p2.c.ld(), cfg);
  for (index_t i = 0; i < p1.m; ++i)
    for (index_t j = 0; j < p1.n; ++j)
      ASSERT_EQ(p1.c(i, j), p2.c(i, j)) << i << "," << j;
}

}  // namespace
}  // namespace shalom
