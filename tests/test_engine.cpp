// Concurrency battery for the execution engine (PR 6): the work-stealing
// ThreadPool with overlapping fork-join rounds, the caller-inline help
// path, steal/wedge fault behaviour, and the asynchronous GemmStream
// front-end. Labelled `engine`; scripts/tier1.sh re-runs this suite (with
// the stress label) under ThreadSanitizer, so every test here must also
// be race-clean by construction - no unsynchronized test-side state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "core/engine.h"
#include "core/shalom.h"
#include "core/threadpool.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

/// Forces the round-admission policy for one test and restores the env
/// default on scope exit, so no test leaks its override into the next.
struct SerializeRoundsGuard {
  explicit SerializeRoundsGuard(bool on) {
    ThreadPool::set_serialize_rounds_for_testing(on);
  }
  ~SerializeRoundsGuard() { ThreadPool::clear_serialize_rounds_override(); }
};

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    robustness_stats_reset();
  }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Concurrent clients: bitwise determinism
// ---------------------------------------------------------------------------

/// Counts elementwise bitwise differences between two same-shape matrices
/// (GTest assertions are not thread-safe; clients tally, main asserts).
int count_bitwise_diffs(const Matrix<float>& got, const Matrix<float>& want) {
  int bad = 0;
  for (index_t i = 0; i < got.rows(); ++i)
    for (index_t j = 0; j < got.cols(); ++j)
      if (std::memcmp(&got(i, j), &want(i, j), sizeof(float)) != 0) ++bad;
  return bad;
}

// N clients x M shapes: every client's product under full round overlap
// must be bitwise identical to the same call run in isolation. The
// partition assigns each C sub-block to exactly one task with a fixed
// serial loop nest, so WHICH thread steals a task must never show up in
// the arithmetic.
TEST_F(EngineTest, ConcurrentClientsBitwiseMatchIsolatedRuns) {
  SerializeRoundsGuard overlap(false);
  struct Case {
    Mode mode;
    index_t m, n, k;
  };
  const std::vector<Case> cases = {
      {{Trans::N, Trans::N}, 48, 96, 32},  {{Trans::N, Trans::T}, 13, 57, 21},
      {{Trans::T, Trans::N}, 64, 40, 48},  {{Trans::N, Trans::N}, 7, 9, 120},
      {{Trans::T, Trans::T}, 33, 33, 33},
  };
  Config cfg;
  cfg.threads = 3;

  // Isolated reference pass: same cfg, no concurrency.
  std::vector<testing::Problem<float>> problems;
  std::vector<Matrix<float>> c0;  // pristine C inputs, pre-reference
  problems.reserve(cases.size());
  for (const Case& s : cases) {
    problems.emplace_back(s.mode, s.m, s.n, s.k);
    testing::Problem<float>& p = problems.back();
    c0.push_back(p.c);
    gemm(s.mode.a, s.mode.b, s.m, s.n, s.k, 1.25f, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);
  }

  constexpr int kClients = 8;
  constexpr int kIters = 6;
  std::atomic<int> diffs{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const std::size_t s = (static_cast<std::size_t>(t) + it) % cases.size();
        const testing::Problem<float>& p = problems[s];
        Matrix<float> c = c0[s];  // private output, same initial contents
        gemm(p.mode.a, p.mode.b, p.m, p.n, p.k, 1.25f, p.a.data(), p.a.ld(),
             p.b.data(), p.b.ld(), 0.5f, c.data(), c.ld(), cfg);
        diffs.fetch_add(count_bitwise_diffs(c, p.c),
                        std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(diffs.load(std::memory_order_relaxed), 0)
      << "concurrent execution changed some product bitwise";
}

// ---------------------------------------------------------------------------
// Round overlap: the tentpole property
// ---------------------------------------------------------------------------

// Two independent callers' rounds must genuinely be in flight at once.
// Task 0 of each round (always run by its submitting thread) rendezvouses
// with the other round's task 0; the deadline keeps a scheduler regression
// from hanging the suite - the assertion below fails instead.
TEST_F(EngineTest, IndependentRoundsOverlap) {
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  const auto rendezvous = [&arrived] {
    arrived.fetch_add(1, std::memory_order_acq_rel);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (arrived.load(std::memory_order_acquire) < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  };
  std::vector<std::thread> callers;
  for (int caller = 0; caller < 2; ++caller) {
    callers.emplace_back([&] {
      pool.parallel_for(
          2,
          [&](int t) {
            if (t == 0) rendezvous();
          },
          /*watchdog_ms=*/0);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(arrived.load(std::memory_order_acquire), 2)
      << "the two rounds never ran concurrently (rendezvous timed out)";
  EXPECT_GE(pool.max_overlapped_rounds_for_testing(), 2);
}

// The SHALOM_SERIALIZE_ROUNDS compatibility mode restores the PR 5
// one-round-at-a-time admission: correct results, no overlap ever.
TEST_F(EngineTest, SerializedRoundsDoNotOverlap) {
  SerializeRoundsGuard serialize(true);
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  std::vector<std::thread> callers;
  for (int caller = 0; caller < 4; ++caller) {
    callers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        pool.parallel_for(
            2,
            [&](int) {
              runs.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            },
            /*watchdog_ms=*/0);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(runs.load(std::memory_order_relaxed), 4 * 8 * 2);
  EXPECT_EQ(pool.max_overlapped_rounds_for_testing(), 1)
      << "serialize mode must admit one round at a time";
}

// ---------------------------------------------------------------------------
// Fault sites: steal skip and wedged workers
// ---------------------------------------------------------------------------

// threadpool.steal failing on EVERY attempt may only degrade load balance:
// all work still runs exactly once (via own deques, the injection list,
// and the leader), and results stay right.
TEST_F(EngineTest, StealFaultDegradesOnlyLoadBalance) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(4);
  fault::arm(fault::Site::kThreadpoolSteal, fault::Mode::kEveryN, 1);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> counts(4);
    pool.parallel_for(
        4, [&](int t) { counts[t].fetch_add(1, std::memory_order_relaxed); },
        /*watchdog_ms=*/0);
    for (auto& c : counts)
      ASSERT_EQ(c.load(std::memory_order_relaxed), 1)
          << "task lost or duplicated under steal faults in round " << round;
  }
  fault::disarm_all();

  testing::Problem<float> p({Trans::N, Trans::T}, 60, 90, 40);
  Config cfg;
  cfg.threads = 4;
  fault::arm(fault::Site::kThreadpoolSteal, fault::Mode::kEveryN, 1);
  gemm(Trans::N, Trans::T, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("gemm under steal faults");
}

// Even when EVERY worker that picks up work wedges, a watchdog-free round
// completes: the leader's inline claim-scan runs whatever the wedged
// workers dropped. This is the "submitters never block idle" guarantee.
TEST_F(EngineTest, LeaderCompletesRoundWhenAllWorkersWedge) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kEveryN, 1);
  pool.parallel_for(
      4, [&](int t) { counts[t].fetch_add(1, std::memory_order_relaxed); },
      /*watchdog_ms=*/0);
  fault::disarm_all();
  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(counts[static_cast<std::size_t>(t)].load(
                  std::memory_order_relaxed),
              1)
        << "task " << t;
}

// PR 5 wedge-recovery regression, re-run under the stealing scheduler: a
// worker wedged at pickup (its queued hints stay stealable, its claimed
// nothing) must be recovered by the watchdog leader with every task run
// exactly once, and the pool marked degraded.
TEST_F(EngineTest, WatchdogRecoversWedgedWorkerUnderStealing) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(4);
  if (pool.max_threads() < 4)
    GTEST_SKIP() << "could not spawn 3 workers on this host";

  std::vector<std::atomic<int>> counts(4);
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kOnce);
  pool.parallel_for(
      4, [&](int t) { counts[t].fetch_add(1, std::memory_order_relaxed); },
      /*watchdog_ms=*/100);
  fault::disarm_all();

  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(counts[static_cast<std::size_t>(t)].load(
                  std::memory_order_relaxed),
              1)
        << "task " << t << " must run exactly once";
  EXPECT_TRUE(pool.degraded());
  EXPECT_GE(robustness_stats().watchdog_trips, 1u);
}

// ---------------------------------------------------------------------------
// GemmStream: asynchronous submission
// ---------------------------------------------------------------------------

TEST_F(EngineTest, StreamSubmitFlushMatchesReference) {
  engine::GemmStream stream;
  testing::Problem<float> pf({Trans::N, Trans::N}, 24, 36, 16);
  testing::Problem<double> pd({Trans::T, Trans::N}, 17, 11, 23);

  engine::TicketPtr tf = stream.submit<float>(
      pf.mode, pf.m, pf.n, pf.k, 1.5f, pf.a.data(), pf.a.ld(), pf.b.data(),
      pf.b.ld(), 0.25f, pf.c.data(), pf.c.ld());
  engine::TicketPtr td = stream.submit<double>(
      pd.mode, pd.m, pd.n, pd.k, -1.0, pd.a.data(), pd.a.ld(), pd.b.data(),
      pd.b.ld(), 0.5, pd.c.data(), pd.c.ld());
  stream.flush();

  ASSERT_TRUE(tf->done());
  ASSERT_TRUE(td->done());
  EXPECT_EQ(tf->wait(), 0);
  EXPECT_EQ(td->wait(), 0);
  EXPECT_EQ(tf->message(), "");

  pf.run_reference(1.5f, 0.25f);
  pf.expect_matches("stream float");
  pd.run_reference(-1.0, 0.5);
  pd.expect_matches("stream double");

  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.executed, 2u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, st.executed)
      << "coalescing can only merge requests, never split them";
}

TEST_F(EngineTest, StreamWaitIsIdempotentAndBlocksUntilDone) {
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 32, 32, 32);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), 0);  // blocks until the drainer executed it
  EXPECT_TRUE(t->done());
  EXPECT_EQ(t->wait(), 0);  // idempotent re-wait
  EXPECT_EQ(t->status(), 0);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("stream wait");
}

// Many clients share one stream; every ticket resolves OK and every
// product is right. Each client owns its problem storage for the full
// submit -> wait window (the documented buffer-lifetime contract).
TEST_F(EngineTest, ManyClientsOneStream) {
  engine::GemmStream stream;
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<testing::Problem<float>> ps;
      std::vector<engine::TicketPtr> tickets;
      ps.reserve(kPerClient);
      tickets.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        // A few distinct shapes per client, repeated, so the drainer sees
        // coalescable duplicates from different clients.
        const index_t m = 8 + 4 * (i % 3);
        const index_t n = 12 + 4 * (t % 2);
        ps.emplace_back(Mode{Trans::N, Trans::N}, m, n, 16);
        testing::Problem<float>& p = ps.back();
        tickets.push_back(stream.submit<float>(
            p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
            p.b.ld(), 0.5f, p.c.data(), p.c.ld()));
      }
      for (int i = 0; i < kPerClient; ++i) {
        if (tickets[static_cast<std::size_t>(i)]->wait() != 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        testing::Problem<float>& p = ps[static_cast<std::size_t>(i)];
        p.run_reference(1.0f, 0.5f);
        const double tol = testing::gemm_tolerance<float>(p.k);
        for (index_t r = 0; r < p.m; ++r)
          for (index_t c = 0; c < p.n; ++c)
            if (!(std::fabs(static_cast<double>(p.c(r, c)) -
                            static_cast<double>(p.c_ref(r, c))) <= tol))
              mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0);
  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(st.executed, st.submitted);
}

TEST_F(EngineTest, StreamDestructorDrainsPending) {
  testing::Problem<float> p({Trans::N, Trans::T}, 20, 30, 25);
  engine::TicketPtr ticket;
  {
    engine::GemmStream stream;
    ticket = stream.submit<float>(p.mode, p.m, p.n, p.k, 2.0f, p.a.data(),
                                  p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                  p.c.data(), p.c.ld());
    // No flush: destruction itself must execute the request.
  }
  ASSERT_TRUE(ticket->done());
  EXPECT_EQ(ticket->wait(), 0);
  p.run_reference(2.0f, 0.0f);
  p.expect_matches("drained by destructor");
}

TEST_F(EngineTest, StreamSubmitValidatesOnCallingThread) {
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f,
                                    p.a.data(), /*lda=*/2, p.b.data(),
                                    p.b.ld(), 0.0f, p.c.data(), p.c.ld()),
               invalid_argument);
  EXPECT_EQ(stream.stats().submitted, 0u)
      << "a rejected submission must not enter the queue";
}

// A transient enqueue failure (kOnce) is absorbed by the submit retry
// budget: the caller never sees it, only the retry counters move.
TEST_F(EngineTest, SubmitQueueFaultAbsorbedByRetry) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);

  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kOnce);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  fault::disarm_all();
  EXPECT_EQ(t->wait(), 0);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("submit retried past a transient fault");
  EXPECT_GE(stream.stats().retries, 1u);
  EXPECT_GE(robustness_stats().submit_retries, 1u);
}

// A persistent enqueue failure (every-1) exhausts the retry budget and
// surfaces as std::bad_alloc with the queue unchanged (strong guarantee).
TEST_F(EngineTest, SubmitQueueFaultRejectsBeforeQueueing) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::StreamOptions opts;
  opts.retry_budget = 0;  // no point backing off from a permanent fault
  engine::GemmStream stream(opts);
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);

  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 1);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(),
                                    p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                    p.c.data(), p.c.ld()),
               std::bad_alloc);
  fault::disarm_all();
  EXPECT_EQ(stream.stats().submitted, 0u) << "strong guarantee: no residue";

  // The stream survives the rejection and keeps serving.
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), 0);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("submit after rejected submit");
}

// ---------------------------------------------------------------------------
// Admission control, deadlines, cancellation
// ---------------------------------------------------------------------------

/// A request big enough to keep the single drainer busy for a while, so
/// later submissions observably queue behind it on any host. Tests that
/// use it stay tolerant of fast machines: "still queued" outcomes are
/// asserted only when they actually happened.
testing::Problem<float> make_busy_problem() {
  return testing::Problem<float>({Trans::N, Trans::N}, 192, 192, 192);
}

// The engine.deadline fault site expires swept requests deterministically
// (no real clock dependence): the ticket resolves SHALOM_ERR_TIMEOUT and
// the output buffer is never touched.
TEST_F(EngineTest, DeadlineFaultExpiresQueuedRequestWithoutTouchingC) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);
  const Matrix<float> pristine = p.c;

  fault::arm(fault::Site::kEngineDeadline, fault::Mode::kEveryN, 1);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld(), /*deadline_ms=*/1000);
  EXPECT_EQ(t->wait(), SHALOM_ERR_TIMEOUT);
  fault::disarm_all();

  EXPECT_EQ(count_bitwise_diffs(p.c, pristine), 0)
      << "an expired request must never write to C";
  EXPECT_NE(t->message(), "");
  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_GE(st.expired, 1u);
  EXPECT_EQ(st.executed, 0u);
  EXPECT_GE(robustness_stats().requests_expired, 1u);

  // The stream keeps serving after the expiry.
  engine::TicketPtr ok = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(ok->wait(), SHALOM_OK);
}

// A real (clock-driven) deadline behind a busy drainer: the request
// either executed in time (bitwise-correct) or expired - never both,
// never neither, and the stats reconcile exactly.
TEST_F(EngineTest, RealDeadlineEitherExecutesOrExpires) {
  engine::GemmStream stream;
  testing::Problem<float> busy = make_busy_problem();
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);
  const Matrix<float> pristine = p.c;

  engine::TicketPtr tb = stream.submit<float>(
      busy.mode, busy.m, busy.n, busy.k, 1.0f, busy.a.data(), busy.a.ld(),
      busy.b.data(), busy.b.ld(), 0.0f, busy.c.data(), busy.c.ld());
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld(), /*deadline_ms=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EXPECT_EQ(tb->wait(), SHALOM_OK);
  const int status = t->wait();
  if (status == SHALOM_OK) {
    p.run_reference(1.0f, 0.0f);
    p.expect_matches("deadline race, executed in time");
  } else {
    EXPECT_EQ(status, SHALOM_ERR_TIMEOUT);
    EXPECT_EQ(count_bitwise_diffs(p.c, pristine), 0);
  }
  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.executed + st.expired, 2u)
      << "every accepted request resolves exactly one way";
}

// The engine.shed fault rejects the incoming submission before queueing.
TEST_F(EngineTest, EngineShedFaultRejectsSubmission) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);

  fault::arm(fault::Site::kEngineShed, fault::Mode::kOnce);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(),
                                    p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                    p.c.data(), p.c.ld()),
               rejected_error);
  fault::disarm_all();
  EXPECT_EQ(stream.stats().submitted, 0u);
  EXPECT_EQ(stream.stats().shed, 1u);
  EXPECT_GE(robustness_stats().requests_shed, 1u);

  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), SHALOM_OK);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("submit after shed");
}

// shed-newest at capacity: accepted + shed always equals attempts, shed
// submissions throw rejected_error, and every accepted request still
// produces the right product.
TEST_F(EngineTest, ShedNewestPolicyBookkeepsEveryAttempt) {
  engine::StreamOptions opts;
  opts.queue_cap = 1;
  opts.overload_policy = static_cast<int>(engine::OverloadPolicy::kShedNewest);
  engine::GemmStream stream(opts);

  testing::Problem<float> busy = make_busy_problem();
  engine::TicketPtr tb = stream.submit<float>(
      busy.mode, busy.m, busy.n, busy.k, 1.0f, busy.a.data(), busy.a.ld(),
      busy.b.data(), busy.b.ld(), 0.0f, busy.c.data(), busy.c.ld());

  constexpr int kAttempts = 6;
  std::vector<testing::Problem<float>> ps;
  std::vector<engine::TicketPtr> tickets;
  ps.reserve(kAttempts);
  int shed = 0;
  for (int i = 0; i < kAttempts; ++i) {
    ps.emplace_back(Mode{Trans::N, Trans::N}, 12, 12, 12);
    testing::Problem<float>& p = ps.back();
    try {
      tickets.push_back(stream.submit<float>(
          p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
          p.b.ld(), 0.0f, p.c.data(), p.c.ld()));
    } catch (const rejected_error&) {
      ++shed;
      tickets.push_back(nullptr);
    }
  }
  EXPECT_EQ(stream.flush(), SHALOM_OK);
  EXPECT_EQ(tb->wait(), SHALOM_OK);

  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted + st.shed, 1u + kAttempts);
  EXPECT_EQ(st.shed, static_cast<std::uint64_t>(shed));
  for (int i = 0; i < kAttempts; ++i) {
    if (tickets[static_cast<std::size_t>(i)] == nullptr) continue;
    testing::Problem<float>& p = ps[static_cast<std::size_t>(i)];
    ASSERT_EQ(tickets[static_cast<std::size_t>(i)]->wait(), SHALOM_OK);
    p.run_reference(1.0f, 0.0f);
    p.expect_matches("accepted under shed-newest");
  }
}

// shed-oldest at capacity: a queued ticket may be revoked in favor of a
// newer arrival; it then resolves SHALOM_ERR_REJECTED with C untouched.
TEST_F(EngineTest, ShedOldestPolicyRevokesQueuedTicket) {
  engine::StreamOptions opts;
  opts.queue_cap = 1;
  opts.overload_policy = static_cast<int>(engine::OverloadPolicy::kShedOldest);
  engine::GemmStream stream(opts);

  testing::Problem<float> busy = make_busy_problem();
  const Matrix<float> busy_pristine = busy.c;
  engine::TicketPtr tb = stream.submit<float>(
      busy.mode, busy.m, busy.n, busy.k, 1.0f, busy.a.data(), busy.a.ld(),
      busy.b.data(), busy.b.ld(), 0.0f, busy.c.data(), busy.c.ld());

  constexpr int kAttempts = 4;
  std::vector<testing::Problem<float>> ps;
  std::vector<Matrix<float>> pristine;
  std::vector<engine::TicketPtr> tickets;
  ps.reserve(kAttempts);
  for (int i = 0; i < kAttempts; ++i) {
    ps.emplace_back(Mode{Trans::N, Trans::N}, 12, 12, 12);
    testing::Problem<float>& p = ps.back();
    pristine.push_back(p.c);
    tickets.push_back(stream.submit<float>(
        p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
        p.b.ld(), 0.0f, p.c.data(), p.c.ld()));
  }
  EXPECT_EQ(stream.flush(), SHALOM_OK);

  // The busy ticket itself may be the "oldest" shed if the drainer had not
  // claimed it before the first small submission hit the cap.
  int executed = 0;
  const int tb_status = tb->wait();
  if (tb_status == SHALOM_OK) {
    ++executed;
    busy.run_reference(1.0f, 0.0f);
    busy.expect_matches("busy survivor under shed-oldest");
  } else {
    EXPECT_EQ(tb_status, SHALOM_ERR_REJECTED);
    EXPECT_EQ(count_bitwise_diffs(busy.c, busy_pristine), 0)
        << "a shed request must never write to C";
  }
  for (int i = 0; i < kAttempts; ++i) {
    testing::Problem<float>& p = ps[static_cast<std::size_t>(i)];
    const int status = tickets[static_cast<std::size_t>(i)]->wait();
    if (status == SHALOM_OK) {
      ++executed;
      p.run_reference(1.0f, 0.0f);
      p.expect_matches("survivor under shed-oldest");
    } else {
      EXPECT_EQ(status, SHALOM_ERR_REJECTED);
      EXPECT_EQ(count_bitwise_diffs(p.c, pristine[static_cast<std::size_t>(i)]),
                0)
          << "a shed request must never write to C";
    }
  }
  // shed-oldest never rejects the submitter, so every attempt was accepted,
  // and everything accepted either executed or was shed while queued. The
  // last arrival has nothing after it to shed it, so at least one executes.
  EXPECT_GE(executed, 1);
  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, 1u + kAttempts);
  EXPECT_EQ(st.executed, static_cast<std::uint64_t>(executed));
  EXPECT_EQ(st.shed, 1u + kAttempts - static_cast<std::uint64_t>(executed));
}

// Caller-side cancellation: revoke() wins only while the request is still
// queued (C stays untouched); once the drainer claimed it, revoke fails
// and the request completes normally. Exactly one side resolves.
TEST_F(EngineTest, CancelQueuedRequestResolvesExactlyOnce) {
  engine::GemmStream stream;
  testing::Problem<float> busy = make_busy_problem();
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);
  const Matrix<float> pristine = p.c;

  engine::TicketPtr tb = stream.submit<float>(
      busy.mode, busy.m, busy.n, busy.k, 1.0f, busy.a.data(), busy.a.ld(),
      busy.b.data(), busy.b.ld(), 0.0f, busy.c.data(), busy.c.ld());
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());

  const bool cancelled = t->revoke(SHALOM_ERR_REJECTED, "cancelled by test");
  EXPECT_EQ(tb->wait(), SHALOM_OK);
  if (cancelled) {
    EXPECT_EQ(t->wait(), SHALOM_ERR_REJECTED);
    EXPECT_EQ(count_bitwise_diffs(p.c, pristine), 0)
        << "a cancelled request must never write to C";
  } else {
    EXPECT_EQ(t->wait(), SHALOM_OK);
    p.run_reference(1.0f, 0.0f);
    p.expect_matches("cancel lost the race, request executed");
  }
  // After resolution both handshake sides always lose.
  EXPECT_FALSE(t->revoke(SHALOM_ERR_REJECTED, "second cancel"));
  EXPECT_FALSE(t->try_claim());
}

TEST_F(EngineTest, WaitForBoundsTheWaitWithoutConsumingTheTicket) {
  engine::GemmStream stream;
  testing::Problem<float> busy = make_busy_problem();
  engine::TicketPtr t = stream.submit<float>(
      busy.mode, busy.m, busy.n, busy.k, 1.0f, busy.a.data(), busy.a.ld(),
      busy.b.data(), busy.b.ld(), 0.0f, busy.c.data(), busy.c.ld());
  // A zero-budget wait returns immediately; whichever way it resolved,
  // the ticket stays usable and the final wait still succeeds.
  const bool early = t->wait_for(0);
  if (early) EXPECT_TRUE(t->done());
  EXPECT_EQ(t->wait(), SHALOM_OK);
  EXPECT_TRUE(t->wait_for(0)) << "wait_for after done() must not block";
  busy.run_reference(1.0f, 0.0f);
  busy.expect_matches("wait_for then wait");
}

// ---------------------------------------------------------------------------
// Degraded modes: spawn failure and the circuit breaker
// ---------------------------------------------------------------------------

// threadpool.spawn failing on every attempt: the stream constructs anyway,
// latches synchronous-degraded, reports kDegraded health, and serves
// bitwise-correct results whose tickets resolve SHALOM_DEGRADED.
TEST_F(EngineTest, SpawnFaultDegradesStreamToSynchronous) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::StreamOptions opts;
  opts.retry_budget = 0;  // skip the backoff sleeps; the fault is permanent
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kEveryN, 1);
  engine::GemmStream stream(opts);
  fault::disarm_all();

  EXPECT_EQ(stream.health(), engine::StreamHealth::kDegraded);
  testing::Problem<float> p({Trans::N, Trans::N}, 24, 24, 24);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  ASSERT_TRUE(t->done()) << "degraded streams execute inside submit()";
  EXPECT_EQ(t->wait(), SHALOM_DEGRADED);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("degraded synchronous execution");
  EXPECT_EQ(stream.flush(), SHALOM_DEGRADED)
      << "flush must advertise the degraded path even though work completed";
  EXPECT_EQ(stream.stats().executed, 1u);
}

// Retry-exhausted submits trip the circuit breaker after
// breaker_threshold consecutive failures; the latched stream bypasses the
// failing queue entirely and keeps serving inline.
TEST_F(EngineTest, CircuitBreakerLatchesAfterConsecutiveFailures) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::StreamOptions opts;
  opts.retry_budget = 0;
  opts.breaker_threshold = 3;
  engine::GemmStream stream(opts);
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);

  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f,
                                      p.a.data(), p.a.ld(), p.b.data(),
                                      p.b.ld(), 0.0f, p.c.data(), p.c.ld()),
                 std::bad_alloc);
  }
  EXPECT_EQ(stream.health(), engine::StreamHealth::kDegraded);
  // Still armed: the latched inline path never touches submit.queue.
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  fault::disarm_all();
  EXPECT_EQ(t->wait(), SHALOM_DEGRADED);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("served inline after breaker trip");
  EXPECT_GE(robustness_stats().breaker_trips, 1u);
}

// ---------------------------------------------------------------------------
// Lifecycle: close, bounded flush, teardown races
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CloseDrainsThenRejectsNewWork) {
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 20, 20, 20);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());

  EXPECT_EQ(stream.close(), SHALOM_OK);
  ASSERT_TRUE(t->done()) << "close() must drain accepted work";
  EXPECT_EQ(t->wait(), SHALOM_OK);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("drained by close");

  EXPECT_EQ(stream.health(), engine::StreamHealth::kDraining);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(),
                                    p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                    p.c.data(), p.c.ld()),
               rejected_error);
  EXPECT_EQ(stream.close(), SHALOM_OK) << "close() is idempotent";
}

TEST_F(EngineTest, FlushForBoundsTheFlush) {
  engine::GemmStream stream;
  EXPECT_EQ(stream.flush_for(50), SHALOM_OK) << "idle stream drains instantly";

  testing::Problem<float> busy = make_busy_problem();
  engine::TicketPtr t = stream.submit<float>(
      busy.mode, busy.m, busy.n, busy.k, 1.0f, busy.a.data(), busy.a.ld(),
      busy.b.data(), busy.b.ld(), 0.0f, busy.c.data(), busy.c.ld());
  const int rc = stream.flush_for(0);
  EXPECT_TRUE(rc == SHALOM_OK || rc == SHALOM_ERR_TIMEOUT) << rc;
  EXPECT_EQ(stream.flush(), SHALOM_OK) << "a timed-out flush is re-waitable";
  EXPECT_EQ(t->wait(), SHALOM_OK);
}

// Teardown under fire: waiters and cancellers race stream destruction.
// Every ticket must resolve to exactly one terminal status and nothing
// may deadlock, leak, or touch freed stream state (TSan-checked in tier1).
TEST_F(EngineTest, TeardownRacesWaitersAndCancellers) {
  constexpr int kIters = 6;
  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 4;
  for (int iter = 0; iter < kIters; ++iter) {
    // Problem storage outlives the stream: buffers must stay valid until
    // each ticket resolves, and resolution can happen inside the dtor.
    std::vector<std::vector<testing::Problem<float>>> ps(kSubmitters);
    std::vector<std::vector<engine::TicketPtr>> tickets(kSubmitters);
    std::thread waiter, canceller;
    {
      engine::StreamOptions opts;
      opts.queue_cap = 4;
      opts.overload_policy =
          static_cast<int>(engine::OverloadPolicy::kShedNewest);
      engine::GemmStream stream(opts);
      std::vector<std::thread> submitters;
      for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
          for (int i = 0; i < kPerSubmitter; ++i) {
            ps[static_cast<std::size_t>(s)].emplace_back(
                Mode{Trans::N, Trans::N}, 10 + 2 * i, 12, 14);
            testing::Problem<float>& p = ps[static_cast<std::size_t>(s)].back();
            try {
              tickets[static_cast<std::size_t>(s)].push_back(
                  stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f,
                                       p.a.data(), p.a.ld(), p.b.data(),
                                       p.b.ld(), 0.0f, p.c.data(), p.c.ld()));
            } catch (const rejected_error&) {
              // Shed under pressure: no ticket to track.
            }
          }
        });
      }
      for (auto& t : submitters) t.join();
      // Race the destructor: one thread waits on every ticket, another
      // tries to cancel every ticket, while the stream is torn down.
      waiter = std::thread([&] {
        for (auto& per : tickets)
          for (auto& t : per) t->wait();
      });
      canceller = std::thread([&] {
        for (auto& per : tickets)
          for (auto& t : per) t->revoke(SHALOM_ERR_REJECTED, "race cancel");
      });
    }  // ~GemmStream while waiter + canceller run
    waiter.join();
    canceller.join();
    for (auto& per : tickets)
      for (auto& t : per) {
        ASSERT_TRUE(t->done()) << "ticket leaked by teardown (iter " << iter
                               << ")";
        const int status = t->status();
        EXPECT_TRUE(status == SHALOM_OK || status == SHALOM_ERR_REJECTED ||
                    status == SHALOM_DEGRADED)
            << "unexpected terminal status " << status;
      }
  }
}

// ---------------------------------------------------------------------------
// Env knobs (driven by the EngineEnv* ctest wrappers in CMakeLists.txt)
// ---------------------------------------------------------------------------

// Wrapper sets SHALOM_QUEUE_CAP=3 SHALOM_OVERLOAD_POLICY=shed-oldest
// SHALOM_RETRY_BUDGET=5; skipped in a plain run (knobs unset / different).
TEST(EngineEnv, KnobsParseGoodValues) {
  const char* cap = env::raw("SHALOM_QUEUE_CAP");
  if (cap == nullptr || std::string(cap) != "3")
    GTEST_SKIP() << "run via the engine_env_good ctest wrapper";
  EXPECT_EQ(engine::env_queue_cap(), 3);
  EXPECT_EQ(engine::env_overload_policy(),
            engine::OverloadPolicy::kShedOldest);
  EXPECT_EQ(engine::env_retry_budget(), 5);
}

// Wrapper sets SHALOM_QUEUE_CAP=0 (a cap of zero would reject everything
// - never what an operator meant), SHALOM_OVERLOAD_POLICY=bogus and
// SHALOM_RETRY_BUDGET=-5: each warns once and falls back to its default.
TEST(EngineEnv, MalformedKnobsWarnOnceAndFallBack) {
  const char* cap = env::raw("SHALOM_QUEUE_CAP");
  if (cap == nullptr || std::string(cap) != "0")
    GTEST_SKIP() << "run via the engine_env_malformed ctest wrapper";
  EXPECT_EQ(engine::env_queue_cap(), 0) << "fallback: unbounded";
  EXPECT_EQ(engine::env_overload_policy(), engine::OverloadPolicy::kBlock);
  EXPECT_EQ(engine::env_retry_budget(), 3);
}

// ---------------------------------------------------------------------------
// Overload chaos (the PR 7 acceptance test; tier1 re-runs it with faults
// and a small SHALOM_QUEUE_CAP injected via the environment)
// ---------------------------------------------------------------------------

// 8 clients burst into a capped stream with deadlines and faults armed.
// Invariants checked: no deadlock (the test finishes), no leaked tickets
// (every future resolves to exactly one of ok / rejected / timeout /
// degraded-ok), and every accepted-and-executed product is BITWISE equal
// to the same call run in isolation before any fault was armed.
TEST(EngineChaos, OverloadBurst) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  constexpr int kClients = 8;
  constexpr int kPerClient = 8;
  struct Shape {
    index_t m, n, k;
  };
  const Shape kShapes[4] = {{8, 12, 16}, {24, 8, 8}, {16, 16, 32}, {5, 31, 17}};

  // Oracle pass first, with whatever fault state the driver armed still
  // untouched by us and no stream in sight: pure isolated gemm() calls.
  std::vector<std::vector<testing::Problem<float>>> ps(kClients);
  std::vector<std::vector<Matrix<float>>> oracle(kClients);
  Config cfg;  // same execution config the stream resolves (defaults)
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const Shape& s = kShapes[(c + i) % 4];
      ps[static_cast<std::size_t>(c)].emplace_back(
          Mode{Trans::N, Trans::N}, s.m, s.n, s.k);
      testing::Problem<float>& p = ps[static_cast<std::size_t>(c)].back();
      Matrix<float> want = p.c;
      gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
           p.b.data(), p.b.ld(), 0.0f, want.data(), want.ld(), cfg);
      oracle[static_cast<std::size_t>(c)].push_back(std::move(want));
    }
  }

  // Self-arm a default chaos mix only when the driver armed nothing (the
  // tier1 overload stage injects SHALOM_FAULT + SHALOM_QUEUE_CAP itself).
  const bool self_armed = !fault::armed(fault::Site::kSubmitQueue) &&
                          !fault::armed(fault::Site::kEngineDeadline) &&
                          !fault::armed(fault::Site::kAllocPackArena);
  if (self_armed) {
    fault::arm(fault::Site::kAllocPackArena, fault::Mode::kEveryN, 7);
    fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 5);
    fault::arm(fault::Site::kEngineDeadline, fault::Mode::kEveryN, 3);
  }

  engine::StreamOptions opts;
  opts.queue_cap = engine::env_queue_cap() > 0 ? -1 : 4;
  opts.overload_policy =
      env::raw("SHALOM_OVERLOAD_POLICY") != nullptr
          ? -1
          : static_cast<int>(engine::OverloadPolicy::kShedNewest);

  std::atomic<int> n_ok{0}, n_degraded{0}, n_rejected{0}, n_timeout{0};
  std::atomic<int> n_shed_throws{0}, n_alloc_throws{0}, n_other{0};
  std::atomic<int> mismatches{0};
  engine::StreamStats st;
  {
    engine::GemmStream stream(opts);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<engine::TicketPtr> tickets(kPerClient);
        for (int i = 0; i < kPerClient; ++i) {
          testing::Problem<float>& p =
              ps[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)];
          const long deadline_ms = (i % 3 == 0) ? 5 : 0;
          try {
            tickets[static_cast<std::size_t>(i)] = stream.submit<float>(
                p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
                p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(),
                deadline_ms);
          } catch (const rejected_error&) {
            n_shed_throws.fetch_add(1, std::memory_order_relaxed);
          } catch (const timeout_error&) {
            n_timeout.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::bad_alloc&) {
            n_alloc_throws.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (int i = 0; i < kPerClient; ++i) {
          engine::TicketPtr& t = tickets[static_cast<std::size_t>(i)];
          if (t == nullptr) continue;
          const int status = t->wait();
          if (status == SHALOM_OK || status == SHALOM_DEGRADED) {
            (status == SHALOM_OK ? n_ok : n_degraded)
                .fetch_add(1, std::memory_order_relaxed);
            const Matrix<float>& want =
                oracle[static_cast<std::size_t>(c)]
                      [static_cast<std::size_t>(i)];
            const testing::Problem<float>& p =
                ps[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)];
            mismatches.fetch_add(count_bitwise_diffs(p.c, want),
                                 std::memory_order_relaxed);
          } else if (status == SHALOM_ERR_REJECTED) {
            n_rejected.fetch_add(1, std::memory_order_relaxed);
          } else if (status == SHALOM_ERR_TIMEOUT) {
            n_timeout.fetch_add(1, std::memory_order_relaxed);
          } else {
            n_other.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    st = stream.stats();
  }
  if (self_armed) fault::disarm_all();

  EXPECT_EQ(n_other.load(std::memory_order_relaxed), 0)
      << "a future resolved outside {ok, rejected, timeout, degraded-ok}";
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0)
      << "an accepted request's product differs bitwise from isolation";
  // Total reconciliation: every attempt is accounted for exactly once.
  const int resolved = n_ok.load(std::memory_order_relaxed) +
                       n_degraded.load(std::memory_order_relaxed) +
                       n_rejected.load(std::memory_order_relaxed) +
                       n_timeout.load(std::memory_order_relaxed) +
                       n_shed_throws.load(std::memory_order_relaxed) +
                       n_alloc_throws.load(std::memory_order_relaxed);
  EXPECT_EQ(resolved, kClients * kPerClient);
  EXPECT_EQ(st.executed,
            static_cast<std::uint64_t>(
                n_ok.load(std::memory_order_relaxed) +
                n_degraded.load(std::memory_order_relaxed)));
}

}  // namespace
}  // namespace shalom
