// Concurrency battery for the execution engine (PR 6): the work-stealing
// ThreadPool with overlapping fork-join rounds, the caller-inline help
// path, steal/wedge fault behaviour, and the asynchronous GemmStream
// front-end. Labelled `engine`; scripts/tier1.sh re-runs this suite (with
// the stress label) under ThreadSanitizer, so every test here must also
// be race-clean by construction - no unsynchronized test-side state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/engine.h"
#include "core/shalom.h"
#include "core/threadpool.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

/// Forces the round-admission policy for one test and restores the env
/// default on scope exit, so no test leaks its override into the next.
struct SerializeRoundsGuard {
  explicit SerializeRoundsGuard(bool on) {
    ThreadPool::set_serialize_rounds_for_testing(on);
  }
  ~SerializeRoundsGuard() { ThreadPool::clear_serialize_rounds_override(); }
};

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    robustness_stats_reset();
  }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Concurrent clients: bitwise determinism
// ---------------------------------------------------------------------------

/// Counts elementwise bitwise differences between two same-shape matrices
/// (GTest assertions are not thread-safe; clients tally, main asserts).
int count_bitwise_diffs(const Matrix<float>& got, const Matrix<float>& want) {
  int bad = 0;
  for (index_t i = 0; i < got.rows(); ++i)
    for (index_t j = 0; j < got.cols(); ++j)
      if (std::memcmp(&got(i, j), &want(i, j), sizeof(float)) != 0) ++bad;
  return bad;
}

// N clients x M shapes: every client's product under full round overlap
// must be bitwise identical to the same call run in isolation. The
// partition assigns each C sub-block to exactly one task with a fixed
// serial loop nest, so WHICH thread steals a task must never show up in
// the arithmetic.
TEST_F(EngineTest, ConcurrentClientsBitwiseMatchIsolatedRuns) {
  SerializeRoundsGuard overlap(false);
  struct Case {
    Mode mode;
    index_t m, n, k;
  };
  const std::vector<Case> cases = {
      {{Trans::N, Trans::N}, 48, 96, 32},  {{Trans::N, Trans::T}, 13, 57, 21},
      {{Trans::T, Trans::N}, 64, 40, 48},  {{Trans::N, Trans::N}, 7, 9, 120},
      {{Trans::T, Trans::T}, 33, 33, 33},
  };
  Config cfg;
  cfg.threads = 3;

  // Isolated reference pass: same cfg, no concurrency.
  std::vector<testing::Problem<float>> problems;
  std::vector<Matrix<float>> c0;  // pristine C inputs, pre-reference
  problems.reserve(cases.size());
  for (const Case& s : cases) {
    problems.emplace_back(s.mode, s.m, s.n, s.k);
    testing::Problem<float>& p = problems.back();
    c0.push_back(p.c);
    gemm(s.mode.a, s.mode.b, s.m, s.n, s.k, 1.25f, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);
  }

  constexpr int kClients = 8;
  constexpr int kIters = 6;
  std::atomic<int> diffs{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const std::size_t s = (static_cast<std::size_t>(t) + it) % cases.size();
        const testing::Problem<float>& p = problems[s];
        Matrix<float> c = c0[s];  // private output, same initial contents
        gemm(p.mode.a, p.mode.b, p.m, p.n, p.k, 1.25f, p.a.data(), p.a.ld(),
             p.b.data(), p.b.ld(), 0.5f, c.data(), c.ld(), cfg);
        diffs.fetch_add(count_bitwise_diffs(c, p.c),
                        std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(diffs.load(std::memory_order_relaxed), 0)
      << "concurrent execution changed some product bitwise";
}

// ---------------------------------------------------------------------------
// Round overlap: the tentpole property
// ---------------------------------------------------------------------------

// Two independent callers' rounds must genuinely be in flight at once.
// Task 0 of each round (always run by its submitting thread) rendezvouses
// with the other round's task 0; the deadline keeps a scheduler regression
// from hanging the suite - the assertion below fails instead.
TEST_F(EngineTest, IndependentRoundsOverlap) {
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  const auto rendezvous = [&arrived] {
    arrived.fetch_add(1, std::memory_order_acq_rel);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (arrived.load(std::memory_order_acquire) < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  };
  std::vector<std::thread> callers;
  for (int caller = 0; caller < 2; ++caller) {
    callers.emplace_back([&] {
      pool.parallel_for(
          2,
          [&](int t) {
            if (t == 0) rendezvous();
          },
          /*watchdog_ms=*/0);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(arrived.load(std::memory_order_acquire), 2)
      << "the two rounds never ran concurrently (rendezvous timed out)";
  EXPECT_GE(pool.max_overlapped_rounds_for_testing(), 2);
}

// The SHALOM_SERIALIZE_ROUNDS compatibility mode restores the PR 5
// one-round-at-a-time admission: correct results, no overlap ever.
TEST_F(EngineTest, SerializedRoundsDoNotOverlap) {
  SerializeRoundsGuard serialize(true);
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  std::vector<std::thread> callers;
  for (int caller = 0; caller < 4; ++caller) {
    callers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        pool.parallel_for(
            2,
            [&](int) {
              runs.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            },
            /*watchdog_ms=*/0);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(runs.load(std::memory_order_relaxed), 4 * 8 * 2);
  EXPECT_EQ(pool.max_overlapped_rounds_for_testing(), 1)
      << "serialize mode must admit one round at a time";
}

// ---------------------------------------------------------------------------
// Fault sites: steal skip and wedged workers
// ---------------------------------------------------------------------------

// threadpool.steal failing on EVERY attempt may only degrade load balance:
// all work still runs exactly once (via own deques, the injection list,
// and the leader), and results stay right.
TEST_F(EngineTest, StealFaultDegradesOnlyLoadBalance) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(4);
  fault::arm(fault::Site::kThreadpoolSteal, fault::Mode::kEveryN, 1);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> counts(4);
    pool.parallel_for(
        4, [&](int t) { counts[t].fetch_add(1, std::memory_order_relaxed); },
        /*watchdog_ms=*/0);
    for (auto& c : counts)
      ASSERT_EQ(c.load(std::memory_order_relaxed), 1)
          << "task lost or duplicated under steal faults in round " << round;
  }
  fault::disarm_all();

  testing::Problem<float> p({Trans::N, Trans::T}, 60, 90, 40);
  Config cfg;
  cfg.threads = 4;
  fault::arm(fault::Site::kThreadpoolSteal, fault::Mode::kEveryN, 1);
  gemm(Trans::N, Trans::T, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("gemm under steal faults");
}

// Even when EVERY worker that picks up work wedges, a watchdog-free round
// completes: the leader's inline claim-scan runs whatever the wedged
// workers dropped. This is the "submitters never block idle" guarantee.
TEST_F(EngineTest, LeaderCompletesRoundWhenAllWorkersWedge) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kEveryN, 1);
  pool.parallel_for(
      4, [&](int t) { counts[t].fetch_add(1, std::memory_order_relaxed); },
      /*watchdog_ms=*/0);
  fault::disarm_all();
  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(counts[static_cast<std::size_t>(t)].load(
                  std::memory_order_relaxed),
              1)
        << "task " << t;
}

// PR 5 wedge-recovery regression, re-run under the stealing scheduler: a
// worker wedged at pickup (its queued hints stay stealable, its claimed
// nothing) must be recovered by the watchdog leader with every task run
// exactly once, and the pool marked degraded.
TEST_F(EngineTest, WatchdogRecoversWedgedWorkerUnderStealing) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  SerializeRoundsGuard overlap(false);
  ThreadPool pool(4);
  if (pool.max_threads() < 4)
    GTEST_SKIP() << "could not spawn 3 workers on this host";

  std::vector<std::atomic<int>> counts(4);
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kOnce);
  pool.parallel_for(
      4, [&](int t) { counts[t].fetch_add(1, std::memory_order_relaxed); },
      /*watchdog_ms=*/100);
  fault::disarm_all();

  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(counts[static_cast<std::size_t>(t)].load(
                  std::memory_order_relaxed),
              1)
        << "task " << t << " must run exactly once";
  EXPECT_TRUE(pool.degraded());
  EXPECT_GE(robustness_stats().watchdog_trips, 1u);
}

// ---------------------------------------------------------------------------
// GemmStream: asynchronous submission
// ---------------------------------------------------------------------------

TEST_F(EngineTest, StreamSubmitFlushMatchesReference) {
  engine::GemmStream stream;
  testing::Problem<float> pf({Trans::N, Trans::N}, 24, 36, 16);
  testing::Problem<double> pd({Trans::T, Trans::N}, 17, 11, 23);

  engine::TicketPtr tf = stream.submit<float>(
      pf.mode, pf.m, pf.n, pf.k, 1.5f, pf.a.data(), pf.a.ld(), pf.b.data(),
      pf.b.ld(), 0.25f, pf.c.data(), pf.c.ld());
  engine::TicketPtr td = stream.submit<double>(
      pd.mode, pd.m, pd.n, pd.k, -1.0, pd.a.data(), pd.a.ld(), pd.b.data(),
      pd.b.ld(), 0.5, pd.c.data(), pd.c.ld());
  stream.flush();

  ASSERT_TRUE(tf->done());
  ASSERT_TRUE(td->done());
  EXPECT_EQ(tf->wait(), 0);
  EXPECT_EQ(td->wait(), 0);
  EXPECT_EQ(tf->message(), "");

  pf.run_reference(1.5f, 0.25f);
  pf.expect_matches("stream float");
  pd.run_reference(-1.0, 0.5);
  pd.expect_matches("stream double");

  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.executed, 2u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, st.executed)
      << "coalescing can only merge requests, never split them";
}

TEST_F(EngineTest, StreamWaitIsIdempotentAndBlocksUntilDone) {
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 32, 32, 32);
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), 0);  // blocks until the drainer executed it
  EXPECT_TRUE(t->done());
  EXPECT_EQ(t->wait(), 0);  // idempotent re-wait
  EXPECT_EQ(t->status(), 0);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("stream wait");
}

// Many clients share one stream; every ticket resolves OK and every
// product is right. Each client owns its problem storage for the full
// submit -> wait window (the documented buffer-lifetime contract).
TEST_F(EngineTest, ManyClientsOneStream) {
  engine::GemmStream stream;
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<testing::Problem<float>> ps;
      std::vector<engine::TicketPtr> tickets;
      ps.reserve(kPerClient);
      tickets.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        // A few distinct shapes per client, repeated, so the drainer sees
        // coalescable duplicates from different clients.
        const index_t m = 8 + 4 * (i % 3);
        const index_t n = 12 + 4 * (t % 2);
        ps.emplace_back(Mode{Trans::N, Trans::N}, m, n, 16);
        testing::Problem<float>& p = ps.back();
        tickets.push_back(stream.submit<float>(
            p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
            p.b.ld(), 0.5f, p.c.data(), p.c.ld()));
      }
      for (int i = 0; i < kPerClient; ++i) {
        if (tickets[static_cast<std::size_t>(i)]->wait() != 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        testing::Problem<float>& p = ps[static_cast<std::size_t>(i)];
        p.run_reference(1.0f, 0.5f);
        const double tol = testing::gemm_tolerance<float>(p.k);
        for (index_t r = 0; r < p.m; ++r)
          for (index_t c = 0; c < p.n; ++c)
            if (!(std::fabs(static_cast<double>(p.c(r, c)) -
                            static_cast<double>(p.c_ref(r, c))) <= tol))
              mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0);
  const engine::StreamStats st = stream.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(st.executed, st.submitted);
}

TEST_F(EngineTest, StreamDestructorDrainsPending) {
  testing::Problem<float> p({Trans::N, Trans::T}, 20, 30, 25);
  engine::TicketPtr ticket;
  {
    engine::GemmStream stream;
    ticket = stream.submit<float>(p.mode, p.m, p.n, p.k, 2.0f, p.a.data(),
                                  p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                  p.c.data(), p.c.ld());
    // No flush: destruction itself must execute the request.
  }
  ASSERT_TRUE(ticket->done());
  EXPECT_EQ(ticket->wait(), 0);
  p.run_reference(2.0f, 0.0f);
  p.expect_matches("drained by destructor");
}

TEST_F(EngineTest, StreamSubmitValidatesOnCallingThread) {
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f,
                                    p.a.data(), /*lda=*/2, p.b.data(),
                                    p.b.ld(), 0.0f, p.c.data(), p.c.ld()),
               invalid_argument);
  EXPECT_EQ(stream.stats().submitted, 0u)
      << "a rejected submission must not enter the queue";
}

TEST_F(EngineTest, SubmitQueueFaultRejectsBeforeQueueing) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  engine::GemmStream stream;
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);

  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kOnce);
  EXPECT_THROW(stream.submit<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(),
                                    p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                    p.c.data(), p.c.ld()),
               std::bad_alloc);
  fault::disarm_all();
  EXPECT_EQ(stream.stats().submitted, 0u) << "strong guarantee: no residue";

  // The stream survives the rejection and keeps serving.
  engine::TicketPtr t = stream.submit<float>(
      p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
      p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  EXPECT_EQ(t->wait(), 0);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("submit after rejected submit");
}

}  // namespace
}  // namespace shalom
