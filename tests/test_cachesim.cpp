// Tests for the cache simulator: LRU behaviour against hand-computed
// sequences, hierarchy interactions, and sanity properties of the
// strategy walkers (the Fig. 12 substrate).
#include <gtest/gtest.h>

#include "cachesim/cache.h"
#include "cachesim/walkers.h"

namespace shalom::cachesim {
namespace {

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel c(1024, 2, 64);  // 8 sets x 2 ways
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1004));  // same line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheLevel, LruEvictionOrder) {
  // 2-way set: lines A, B fill the set; touching A then inserting C must
  // evict B (the least recently used), so A still hits and B misses.
  CacheLevel c(1024, 2, 64);  // set index = (addr/64) % 8
  const addr_t a = 0 * 64 * 8;  // all map to set 0
  const addr_t b = 1 * 64 * 8;
  const addr_t d = 2 * 64 * 8;
  EXPECT_FALSE(c.access(a));
  EXPECT_FALSE(c.access(b));
  EXPECT_TRUE(c.access(a));   // A now MRU
  EXPECT_FALSE(c.access(d));  // evicts B
  EXPECT_TRUE(c.access(a));
  EXPECT_FALSE(c.access(b));  // B was evicted
}

TEST(CacheLevel, CapacitySweepMissesEveryLine) {
  // Working set of 2x the cache with LRU: a repeated sequential sweep
  // misses on every access.
  CacheLevel c(4096, 4, 64);
  const int lines = 2 * 4096 / 64;
  for (int rep = 0; rep < 3; ++rep)
    for (int l = 0; l < lines; ++l) c.access(static_cast<addr_t>(l) * 64);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), static_cast<std::uint64_t>(3 * lines));
}

TEST(CacheLevel, FitsWorkingSetAfterWarmup) {
  CacheLevel c(4096, 4, 64);
  const int lines = 4096 / 64;
  for (int l = 0; l < lines; ++l) c.access(static_cast<addr_t>(l) * 64);
  c.reset_counters();
  for (int rep = 0; rep < 5; ++rep)
    for (int l = 0; l < lines; ++l) c.access(static_cast<addr_t>(l) * 64);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Hierarchy, L2CatchesL1Evictions) {
  arch::MachineDescriptor m;
  m.l1d = {1024, 64, 2, 1};
  m.l2 = {16 * 1024, 64, 4, 1};
  Hierarchy h(m);
  // Sweep 8 KB (8x the L1, half the L2) twice: first pass misses both,
  // second pass misses L1 but hits L2.
  const int lines = 8 * 1024 / 64;
  for (int l = 0; l < lines; ++l) h.access(static_cast<addr_t>(l) * 64);
  const auto l2_cold = h.l2_misses();
  for (int l = 0; l < lines; ++l) h.access(static_cast<addr_t>(l) * 64);
  EXPECT_EQ(h.l2_misses(), l2_cold) << "second sweep must hit in L2";
  EXPECT_EQ(h.l1_misses(), static_cast<std::uint64_t>(2 * lines));
}

TEST(Hierarchy, MultiLineAccessTouchesEachLine) {
  arch::MachineDescriptor m;
  m.l1d = {4096, 64, 4, 1};
  m.l2 = {64 * 1024, 64, 8, 1};
  Hierarchy h(m);
  h.access(0, 256);  // 4 lines
  EXPECT_EQ(h.accesses(), 4u);
  h.access(60, 8);  // straddles a line boundary
  EXPECT_EQ(h.accesses(), 6u);
}

TEST(Walkers, ShalomBeatsAlwaysPackOnIrregularNt) {
  // The Fig. 12 headline property: on an irregular NT problem, the
  // LibShalom walker must generate fewer L2 misses than the always-pack
  // walker, on both modelled platforms.
  for (const auto& mach : {arch::kunpeng_920(), arch::thunderx2()}) {
    const auto base = walk_goto_nt<float>(mach, 64, 784, 576, 8, 4);
    const auto shal = walk_shalom_nt<float>(mach, 64, 784, 576);
    EXPECT_GT(base.accesses, 0u);
    EXPECT_GT(shal.accesses, 0u);
    EXPECT_LT(shal.l2_misses, base.l2_misses) << mach.name;
  }
}

TEST(Walkers, MissesGrowWithK) {
  const auto mach = arch::kunpeng_920();
  const auto small = walk_shalom_nt<float>(mach, 64, 784, 576);
  const auto large = walk_shalom_nt<float>(mach, 64, 784, 1728);
  EXPECT_GT(large.l2_misses, small.l2_misses);
  EXPECT_GT(large.accesses, small.accesses);
}

TEST(Walkers, TinyProblemFitsL2) {
  // A GEMM whose whole working set fits the L2 should show almost no L2
  // misses beyond compulsory ones (one per touched line).
  const auto mach = arch::kunpeng_920();  // 512 KB private L2
  const auto r = walk_goto_nt<float>(mach, 32, 64, 64, 8, 4);
  const std::uint64_t lines_touched =
      (32 * 64 + 64 * 64 + 32 * 64) * 4 / 64 + 1024 /* pack buffers */;
  EXPECT_LT(r.l2_misses, 2 * lines_touched);
}

TEST(Hierarchy, TlbCountsPageGranularity) {
  arch::MachineDescriptor m;
  m.l1d = {4096, 64, 4, 1};
  m.l2 = {64 * 1024, 64, 8, 1};
  Hierarchy h(m);
  // 256 touches inside one page: exactly one dTLB miss.
  for (int i = 0; i < 256; ++i) h.access(0x10000 + i * 8, 4);
  EXPECT_EQ(h.tlb_misses(), 1u);
  // Touching 128 distinct pages blows the 64-entry dTLB: re-walking them
  // misses every time.
  for (int rep = 0; rep < 2; ++rep)
    for (int p = 0; p < 128; ++p)
      h.access(0x100000 + static_cast<addr_t>(p) * 4096, 4);
  EXPECT_GE(h.tlb_misses(), 1u + 2 * 128u - 64u);
}

TEST(Walkers, ShalomReducesTlbMissesToo) {
  // Pack-ahead + no A packing -> fewer first-touch TLB misses than the
  // always-pack walker (the Section 5.3.2 motivation).
  const auto mach = arch::kunpeng_920();
  const auto base = walk_goto_nt<float>(mach, 64, 784, 1152, 8, 4);
  const auto shal = walk_shalom_nt<float>(mach, 64, 784, 1152);
  EXPECT_LT(shal.tlb_misses, base.tlb_misses);
}

}  // namespace
}  // namespace shalom::cachesim
