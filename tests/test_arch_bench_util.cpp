// Tests for the machine descriptors (paper Table 1 constants) and the
// bench utility layer (stats, timing, table rendering).
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "bench_util/reporter.h"
#include "common/error.h"
#include "bench_util/runner.h"
#include "bench_util/stats.h"

namespace shalom {
namespace {

TEST(Arch, PhytiumMatchesTable1) {
  const auto m = arch::phytium_2000p();
  EXPECT_EQ(m.cores, 64);
  EXPECT_DOUBLE_EQ(m.frequency_ghz, 2.2);
  EXPECT_EQ(m.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(m.l2.size_bytes, 2048u * 1024);
  EXPECT_FALSE(m.l3.present());
  // Paper Table 1: 1126.4 FP32 peak GFLOPS.
  EXPECT_NEAR(m.peak_gflops<float>(), 1126.4, 1e-6);
  // LLC falls back to the L2 when no L3 exists.
  EXPECT_EQ(&m.llc(), &m.l2);
}

TEST(Arch, Kp920MatchesTable1) {
  const auto m = arch::kunpeng_920();
  EXPECT_NEAR(m.peak_gflops<float>(), 2662.4, 1e-6);
  EXPECT_EQ(m.l1d.size_bytes, 64u * 1024);
  EXPECT_TRUE(m.l3.present());
  EXPECT_EQ(&m.llc(), &m.l3);
}

TEST(Arch, ThunderX2MatchesTable1) {
  const auto m = arch::thunderx2();
  EXPECT_EQ(m.cores, 32);
  EXPECT_NEAR(m.peak_gflops<float>(), 1280.0, 1e-6);
}

TEST(Arch, Fp64PeakIsHalfOfFp32) {
  for (const auto& m : arch::paper_machines())
    EXPECT_NEAR(m.peak_gflops<double>(), m.peak_gflops<float>() / 2, 1e-9);
}

TEST(Arch, HostDetectionIsSane) {
  const auto& m = arch::host_machine();
  EXPECT_GE(m.cores, 1);
  EXPECT_GT(m.frequency_ghz, 0.1);
  EXPECT_TRUE(m.l1d.present());
  EXPECT_TRUE(m.l2.present());
  EXPECT_GE(m.vector_registers, 16);
}

TEST(Stats, GeomeanMinMax) {
  const auto s = bench::summarize({1.0, 4.0, 16.0});
  EXPECT_DOUBLE_EQ(s.geomean_s, 4.0);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_s, 16.0);
  EXPECT_EQ(s.reps, 3);
}

TEST(Stats, SingleSample) {
  const auto s = bench::summarize({2.5});
  EXPECT_DOUBLE_EQ(s.geomean_s, 2.5);
}

TEST(Stats, GemmGflops) {
  // 2*M*N*K flops: 2*100*100*100 = 2e6 flops in 1 ms -> 2 GFLOPS.
  EXPECT_DOUBLE_EQ(bench::gemm_gflops(100, 100, 100, 1e-3), 2.0);
}

TEST(Runner, TimeKernelRunsRequestedReps) {
  int calls = 0;
  const auto s = bench::time_kernel([&] { ++calls; }, 3, /*warm=*/true);
  EXPECT_EQ(calls, 4);  // 1 warmup + 3 timed
  EXPECT_EQ(s.reps, 3);
  EXPECT_GE(s.min_s, 0.0);
}

TEST(Runner, OptionsParse) {
  const char* argv[] = {"bench", "--full", "--reps", "9", "--csv"};
  const auto opt =
      bench::BenchOptions::parse(5, const_cast<char**>(argv));
  EXPECT_TRUE(opt.full);
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.reps, 9);
}

TEST(Runner, OptionsDefaults) {
  const char* argv[] = {"bench"};
  const auto opt = bench::BenchOptions::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(opt.full);
  EXPECT_FALSE(opt.csv);
  EXPECT_EQ(opt.reps, 5);
}

TEST(Reporter, TableRowValidation) {
  bench::Table t("test", {"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), invalid_argument);
  t.add_row("label", {1.25});
  t.print();  // must not crash
  t.print(/*csv=*/true);
}

TEST(Reporter, FmtPrecision) {
  EXPECT_EQ(bench::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(bench::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace shalom
