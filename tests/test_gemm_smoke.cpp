// Smoke tests: LibShalom GEMM vs the naive oracle on a few basic shapes.
// The exhaustive sweeps live in test_gemm_correctness.cpp.
#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "common/rng.h"
#include "core/shalom.h"

namespace shalom {
namespace {

template <typename T>
void expect_matches_naive(Mode mode, index_t M, index_t N, index_t K,
                          T alpha, T beta) {
  const index_t a_rows = (mode.a == Trans::N) ? M : K;
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_rows = (mode.b == Trans::N) ? K : N;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;

  Matrix<T> a(a_rows, a_cols), b(b_rows, b_cols);
  Matrix<T> c(M, N), c_ref(M, N);
  fill_random(a, 1);
  fill_random(b, 2);
  fill_random(c, 3);
  c_ref = c;

  gemm(mode.a, mode.b, M, N, K, alpha, a.data(), a.ld(), b.data(), b.ld(),
       beta, c.data(), c.ld());
  baselines::naive_gemm(mode, M, N, K, alpha, a.data(), a.ld(), b.data(),
                        b.ld(), beta, c_ref.data(), c_ref.ld());

  const double tol = static_cast<double>(K + 8) * 1e-6 *
                     (std::is_same_v<T, float> ? 1.0 : 1e-8);
  for (index_t i = 0; i < M; ++i)
    for (index_t j = 0; j < N; ++j)
      ASSERT_NEAR(c(i, j), c_ref(i, j), tol)
          << "at (" << i << "," << j << ") M=" << M << " N=" << N
          << " K=" << K;
}

TEST(GemmSmoke, TinyNN) {
  expect_matches_naive<float>({Trans::N, Trans::N}, 8, 8, 8, 1.f, 0.f);
}

TEST(GemmSmoke, SmallAllModes) {
  for (Trans ta : {Trans::N, Trans::T})
    for (Trans tb : {Trans::N, Trans::T})
      expect_matches_naive<float>({ta, tb}, 23, 29, 17, 1.25f, -0.5f);
}

TEST(GemmSmoke, EdgeSizesNN) {
  expect_matches_naive<float>({Trans::N, Trans::N}, 7, 12, 16, 1.f, 1.f);
  expect_matches_naive<float>({Trans::N, Trans::N}, 9, 13, 5, 1.f, 0.f);
  expect_matches_naive<float>({Trans::N, Trans::N}, 1, 1, 1, 2.f, 3.f);
}

TEST(GemmSmoke, DoubleNT) {
  expect_matches_naive<double>({Trans::N, Trans::T}, 31, 18, 40, 1.0, 0.25);
}

TEST(GemmSmoke, LargeEnoughToPack) {
  // B bigger than any L1: exercises the fused packing path.
  expect_matches_naive<float>({Trans::N, Trans::N}, 33, 700, 150, 1.f, 0.f);
  expect_matches_naive<float>({Trans::N, Trans::T}, 33, 700, 150, 1.f, 0.f);
}

}  // namespace
}  // namespace shalom
