// Persistent tuned-table battery (tuning/table.h): corruption fuzzing
// (truncation at every record boundary and at random offsets, single-bit
// flips, version and fingerprint skew, zero-length and missing files),
// atomic-commit-under-fault byte-identity, the background re-tuner
// lifecycle, and the C ABI mirrors. Every corruption outcome must be a
// clean cold start with the right telemetry counter - never a crash and
// never an invalid record seeded into the plan cache.
//
// Two fixtures: TableTest disarms all fault sites for deterministic
// expectations; TableChaos leaves ambient SHALOM_FAULT arming (the tier-1
// persistence-chaos stage) in place and asserts invariants only.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "core/kernel_contracts.h"
#include "core/plan_cache.h"
#include "core/shalom.h"
#include "core/shalom_c.h"
#include "tests/test_util.h"
#include "tuning/table.h"

namespace shalom {
namespace {

using tuning::kTableFormatVersion;
using tuning::kTableHeaderBytes;
using tuning::kTableRecordBytes;
using tuning::TunedRecord;

// Local CRC-32 (same polynomial as the store) so header-patching tests
// can re-checksum a field they deliberately skewed.
std::uint32_t crc32_of(const unsigned char* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int j = 0; j < 8; ++j)
        c = (c & 1u) != 0 ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void put_u32_at(std::vector<unsigned char>& buf, std::size_t at,
                std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(v >> (8 * i));
}

/// Recomputes the header CRC after a deliberate header patch.
void reseal_header(std::vector<unsigned char>& buf) {
  put_u32_at(buf, 32, crc32_of(buf.data(), 32));
}

/// Recomputes record `i`'s CRC after a deliberate record patch.
void reseal_record(std::vector<unsigned char>& buf, std::size_t i) {
  const std::size_t base = kTableHeaderBytes + i * kTableRecordBytes;
  put_u32_at(buf, base + 60, crc32_of(buf.data() + base, 60));
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

TunedRecord make_record(char dtype = 's', index_t m = 24, index_t n = 16,
                        index_t k = 32) {
  TunedRecord r;
  r.dtype = dtype;
  r.trans_a = false;
  r.trans_b = false;
  r.threads = 1;
  r.m = m;
  r.n = n;
  r.k = k;
  r.kc = 32;
  r.mc = 24;
  r.nc = 16;
  return r;
}

std::string test_path(const char* suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "shalom_" + info->test_suite_name() + "_" +
         info->name() + "_" + suffix + ".tbl";
}

/// Deterministic fixture: all fault sites disarmed, all table and plan
/// state reset, per-test scratch path cleaned on both sides.
class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    tuning::table_clear();
    robustness_stats_reset();
    PlanCache<float>::global().clear();
    PlanCache<double>::global().clear();
    path_ = test_path("t");
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    fault::disarm_all();
    tuning::table_clear();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Registers `n` distinct valid records (alternating dtype) and saves
  /// them to path_; returns the file bytes.
  std::vector<unsigned char> save_table(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      TunedRecord r = make_record(i % 2 == 0 ? 's' : 'd',
                                  8 + static_cast<index_t>(i) * 8, 16, 32);
      EXPECT_TRUE(tuning::table_record(r));
    }
    EXPECT_EQ(tuning::table_save(path_.c_str()), SHALOM_OK);
    tuning::table_clear();
    return read_file(path_);
  }

  std::string path_;
};

// ---------------------------------------------------------------------------
// Validation and registration
// ---------------------------------------------------------------------------

TEST_F(TableTest, ValidateAcceptsLegalAndRejectsIllegalRecords) {
  EXPECT_TRUE(tuning::table_validate(make_record()));
  EXPECT_TRUE(tuning::table_validate(make_record('d', 1, 1, 1)));

  TunedRecord r = make_record();
  r.dtype = 'x';
  EXPECT_FALSE(tuning::table_validate(r));
  r = make_record();
  r.threads = 0;
  EXPECT_FALSE(tuning::table_validate(r));
  r = make_record();
  r.m = 0;
  EXPECT_FALSE(tuning::table_validate(r));
  r = make_record();
  r.k = -5;
  EXPECT_FALSE(tuning::table_validate(r));
  r = make_record();
  r.kc = 0;
  EXPECT_FALSE(tuning::table_validate(r));
  r = make_record();
  r.kc = contracts::kMaxKc + 1;  // past the tuner's own kc clamp
  EXPECT_FALSE(tuning::table_validate(r));
  r = make_record();
  r.nc = 0;
  EXPECT_FALSE(tuning::table_validate(r));
}

TEST_F(TableTest, RejectedRegistrationCountsTelemetry) {
  TunedRecord bad = make_record();
  bad.kc = 0;
  EXPECT_FALSE(tuning::table_record(bad));
  EXPECT_EQ(tuning::table_size(), 0u);
  EXPECT_EQ(robustness_stats().table_records_rejected, 1u);

  // Replacement, not duplication: same key twice is one record.
  EXPECT_TRUE(tuning::table_record(make_record()));
  EXPECT_TRUE(tuning::table_record(make_record()));
  EXPECT_EQ(tuning::table_size(), 1u);
}

// ---------------------------------------------------------------------------
// Round trip and determinism
// ---------------------------------------------------------------------------

TEST_F(TableTest, RoundTripSeedsPlanCacheAndCounts) {
  const std::vector<unsigned char> bytes = save_table(3);
  EXPECT_EQ(bytes.size(), kTableHeaderBytes + 3 * kTableRecordBytes);
  EXPECT_EQ(tuning::table_size(), 0u);  // save_table cleared the registry

  const std::uint64_t loaded_before = tuning::table_stats().records_loaded;
  ASSERT_EQ(tuning::table_load(path_.c_str()), SHALOM_OK);
  EXPECT_EQ(tuning::table_size(), 3u);
  EXPECT_EQ(tuning::table_stats().records_loaded, loaded_before + 3);
  EXPECT_EQ(robustness_stats().table_records_rejected, 0u);
  EXPECT_EQ(robustness_stats().table_load_failures, 0u);
  // Loading pre-seeds the plan cache: the float records (m = 8, 24) and
  // the double record (m = 16) each installed plans.
  EXPECT_GT(PlanCache<float>::global().stats().size, 0u);
  EXPECT_GT(PlanCache<double>::global().stats().size, 0u);
}

TEST_F(TableTest, EqualContentsSaveByteIdentically) {
  const std::vector<unsigned char> first = save_table(4);
  // Re-register the same records in reverse order: the registry is
  // ordered, so the files must still match byte for byte.
  for (int i = 3; i >= 0; --i) {
    TunedRecord r = make_record(i % 2 == 0 ? 's' : 'd',
                                8 + static_cast<index_t>(i) * 8, 16, 32);
    ASSERT_TRUE(tuning::table_record(r));
  }
  const std::string other = test_path("other");
  ASSERT_EQ(tuning::table_save(other.c_str()), SHALOM_OK);
  EXPECT_EQ(read_file(other), first);
  std::remove(other.c_str());
}

// ---------------------------------------------------------------------------
// Corruption fuzz battery: every outcome is a clean cold start (or a
// clean partial load) with the right counter.
// ---------------------------------------------------------------------------

TEST_F(TableTest, MissingFileIsWholeFileFailure) {
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_size(), 0u);
  EXPECT_EQ(robustness_stats().table_load_failures, 1u);
}

TEST_F(TableTest, EmptyAndNullPathsFailCleanly) {
  EXPECT_EQ(tuning::table_load(""), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_load(nullptr), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_save(""), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_save(nullptr), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_stats().save_failures, 2u);
}

TEST_F(TableTest, ZeroLengthFileIsWholeFileFailure) {
  write_file(path_, {});
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_size(), 0u);
  EXPECT_EQ(robustness_stats().table_load_failures, 1u);
}

TEST_F(TableTest, TruncationAtEveryRecordBoundaryRejectsWholeFile) {
  const std::vector<unsigned char> full = save_table(4);
  std::uint64_t failures = 0;
  // Every header/record boundary, plus one byte short of each: a file
  // whose header promises 4 records must reject unless all 4 are there.
  std::vector<std::size_t> cuts = {0, kTableHeaderBytes - 1,
                                   kTableHeaderBytes};
  for (std::size_t i = 1; i <= 4; ++i) {
    cuts.push_back(kTableHeaderBytes + i * kTableRecordBytes - 1);
    if (i < 4) cuts.push_back(kTableHeaderBytes + i * kTableRecordBytes);
  }
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, full.size());
    write_file(path_, std::vector<unsigned char>(full.begin(),
                                                 full.begin() + cut));
    EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE)
        << "cut at " << cut;
    EXPECT_EQ(tuning::table_size(), 0u) << "cut at " << cut;
    EXPECT_EQ(robustness_stats().table_load_failures, ++failures);
  }
  EXPECT_EQ(robustness_stats().table_records_rejected, 0u);
}

TEST_F(TableTest, TruncationAtRandomOffsetsNeverSeedsPartially) {
  const std::vector<unsigned char> full = save_table(4);
  SplitMix64 rng(0x7AB1E5EEDull);
  std::uint64_t failures = 0;
  for (int iter = 0; iter < 48; ++iter) {
    const std::size_t cut =
        static_cast<std::size_t>(rng.next_u64() % full.size());
    write_file(path_, std::vector<unsigned char>(full.begin(),
                                                 full.begin() + cut));
    EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE)
        << "cut at " << cut;
    EXPECT_EQ(tuning::table_size(), 0u) << "cut at " << cut;
    EXPECT_EQ(robustness_stats().table_load_failures, ++failures);
  }
}

TEST_F(TableTest, SingleBitFlipCostsAtMostOneRecord) {
  const std::vector<unsigned char> full = save_table(4);
  std::uint64_t load_failures = 0;
  std::uint64_t rejected = 0;
  // One flipped bit per byte position covers every field of the header
  // and of each record; CRC-32 detects every single-bit error, so the
  // blast radius is exact: header flip = whole file, record flip = that
  // record only.
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    std::vector<unsigned char> mutated = full;
    mutated[byte] =
        static_cast<unsigned char>(mutated[byte] ^ (1u << (byte % 8)));
    write_file(path_, mutated);
    const shalom_status st = tuning::table_load(path_.c_str());
    if (byte < kTableHeaderBytes) {
      EXPECT_EQ(st, SHALOM_ERR_TABLE) << "header byte " << byte;
      EXPECT_EQ(tuning::table_size(), 0u);
      ++load_failures;
    } else {
      EXPECT_EQ(st, SHALOM_OK) << "record byte " << byte;
      EXPECT_EQ(tuning::table_size(), 3u) << "record byte " << byte;
      ++rejected;
    }
    EXPECT_EQ(robustness_stats().table_load_failures, load_failures);
    EXPECT_EQ(robustness_stats().table_records_rejected, rejected);
    tuning::table_clear();
  }
}

TEST_F(TableTest, VersionSkewRejectsWholeFileEvenWithValidCrc) {
  std::vector<unsigned char> bytes = save_table(2);
  put_u32_at(bytes, 8, kTableFormatVersion + 1);
  reseal_header(bytes);  // checksum is valid; the version itself rejects
  write_file(path_, bytes);
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_size(), 0u);
  EXPECT_EQ(robustness_stats().table_load_failures, 1u);
}

TEST_F(TableTest, FingerprintSkewRejectsWholeFile) {
  std::vector<unsigned char> bytes = save_table(2);
  bytes[16] = static_cast<unsigned char>(bytes[16] ^ 0xFFu);  // fingerprint
  reseal_header(bytes);
  write_file(path_, bytes);
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_size(), 0u);
  EXPECT_EQ(robustness_stats().table_load_failures, 1u);
}

TEST_F(TableTest, AbsurdRecordCountRejectsWholeFile) {
  std::vector<unsigned char> bytes = save_table(2);
  put_u32_at(bytes, 12, 1u << 20);  // far past the loader's ceiling
  reseal_header(bytes);
  write_file(path_, bytes);
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE);
  EXPECT_EQ(tuning::table_size(), 0u);
}

TEST_F(TableTest, ChecksumValidButSemanticallyIllegalRecordIsSkipped) {
  std::vector<unsigned char> bytes = save_table(2);
  // Patch record 0's kc (bytes [32, 40) of the record) to 4x the kernel
  // contract bound and reseal its CRC: the checksum passes, the
  // kernel-contract validation must still reject it.
  const std::size_t base = kTableHeaderBytes;
  const std::uint64_t illegal_kc =
      static_cast<std::uint64_t>(contracts::kMaxKc) * 4;
  for (int i = 0; i < 8; ++i)
    bytes[base + 32 + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(illegal_kc >> (8 * i));
  reseal_record(bytes, 0);
  write_file(path_, bytes);
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_OK);
  EXPECT_EQ(tuning::table_size(), 1u);  // the untouched record loaded
  EXPECT_EQ(robustness_stats().table_records_rejected, 1u);
  EXPECT_EQ(robustness_stats().table_load_failures, 0u);
}

// ---------------------------------------------------------------------------
// Atomic commit under injected I/O faults
// ---------------------------------------------------------------------------

TEST_F(TableTest, SaveFaultAtAnySiteLeavesPreviousTableByteIdentical) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  const std::vector<unsigned char> previous = save_table(2);
  ASSERT_TRUE(tuning::table_record(make_record('s', 100, 100, 100)));

  const fault::Site sites[] = {fault::Site::kTableOpen,
                               fault::Site::kTableWrite,
                               fault::Site::kTableFsync,
                               fault::Site::kTableRename};
  std::uint64_t save_failures = tuning::table_stats().save_failures;
  for (const fault::Site site : sites) {
    fault::arm(site, fault::Mode::kOnce);
    EXPECT_EQ(tuning::table_save(path_.c_str()), SHALOM_ERR_TABLE)
        << fault::site_name(site);
    fault::disarm(site);
    EXPECT_EQ(read_file(path_), previous) << fault::site_name(site);
    EXPECT_FALSE(file_exists(path_ + ".tmp")) << fault::site_name(site);
    EXPECT_EQ(tuning::table_stats().save_failures, ++save_failures);
    // The surviving table is not just byte-identical but loadable.
    tuning::table_clear();
    EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_OK);
    EXPECT_EQ(tuning::table_size(), 2u);
    ASSERT_TRUE(tuning::table_record(make_record('s', 100, 100, 100)));
  }

  // Disarmed, the pending third record commits.
  EXPECT_EQ(tuning::table_save(path_.c_str()), SHALOM_OK);
  tuning::table_clear();
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_OK);
  EXPECT_EQ(tuning::table_size(), 3u);
}

TEST_F(TableTest, LoadFaultDegradesToColdStart) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  save_table(2);
  std::uint64_t failures = 0;
  for (const fault::Site site :
       {fault::Site::kTableOpen, fault::Site::kTableRead}) {
    fault::arm(site, fault::Mode::kOnce);
    EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_ERR_TABLE)
        << fault::site_name(site);
    fault::disarm(site);
    EXPECT_EQ(tuning::table_size(), 0u);
    EXPECT_EQ(robustness_stats().table_load_failures, ++failures);
  }
  // And with the sites quiet the same file loads fine: the failure was
  // the injection, not the table.
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_OK);
  EXPECT_EQ(tuning::table_size(), 2u);
}

// ---------------------------------------------------------------------------
// Background re-tuner lifecycle
// ---------------------------------------------------------------------------

TEST_F(TableTest, RetunerPromotesHotShapesAndSavesOnStop) {
  tuning::RetunerOptions opt;
  opt.period_ms = 2;
  opt.top_k = 4;
  opt.max_tunes_per_cycle = 2;
  opt.tune.reps = 1;
  opt.tune.scales = {1.0};
  opt.save_path = path_;

  // Make two small shapes hot in the float cache.
  for (index_t m : {index_t{8}, index_t{12}}) {
    testing::Problem<float> p({Trans::N, Trans::N}, m, 8, 8);
    gemm_cached<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
                       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  }
  ASSERT_GT(PlanCache<float>::global().stats().size, 0u);

  tuning::Retuner r(opt);
  EXPECT_FALSE(r.running());
  ASSERT_TRUE(r.start());
  EXPECT_TRUE(r.running());
  EXPECT_FALSE(r.start());  // double start refused
  r.kick();
  for (int i = 0; i < 2000 && r.promoted() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(r.promoted(), 0u);
  EXPECT_GT(tuning::table_size(), 0u);

  EXPECT_EQ(r.stop(), SHALOM_OK);  // drains, joins, saves to save_path
  EXPECT_FALSE(r.running());
  EXPECT_EQ(r.stop(), SHALOM_OK);  // idempotent, no second save
  ASSERT_TRUE(file_exists(path_));

  tuning::table_clear();
  EXPECT_EQ(tuning::table_load(path_.c_str()), SHALOM_OK);
  EXPECT_GT(tuning::table_size(), 0u);
}

TEST_F(TableTest, RetunerStopWithoutStartIsCleanNoop) {
  tuning::RetunerOptions opt;
  opt.save_path = path_;
  tuning::Retuner r(opt);
  r.kick();  // no-op while idle
  EXPECT_EQ(r.stop(), SHALOM_OK);
  EXPECT_FALSE(file_exists(path_));  // never ran => nothing saved
  EXPECT_EQ(r.cycles(), 0u);
}

// ---------------------------------------------------------------------------
// C ABI mirrors
// ---------------------------------------------------------------------------

TEST_F(TableTest, CapiLoadSaveStatsMirrorCxx) {
  EXPECT_EQ(shalom_table_load(nullptr), SHALOM_ERR_NULL_POINTER);
  EXPECT_EQ(shalom_table_save(nullptr), SHALOM_ERR_NULL_POINTER);
  EXPECT_EQ(shalom_table_get_stats(nullptr), SHALOM_ERR_NULL_POINTER);
  EXPECT_EQ(shalom_table_load(path_.c_str()), SHALOM_ERR_TABLE);
  EXPECT_NE(std::string(shalom_last_error_message()), "");

  ASSERT_TRUE(tuning::table_record(make_record()));
  EXPECT_EQ(shalom_table_save(path_.c_str()), SHALOM_OK);

  shalom_table_stats c_stats;
  ASSERT_EQ(shalom_table_get_stats(&c_stats), SHALOM_OK);
  const tuning::TableStats cxx = tuning::table_stats();
  EXPECT_EQ(c_stats.records_loaded, cxx.records_loaded);
  EXPECT_EQ(c_stats.records_rejected, cxx.records_rejected);
  EXPECT_EQ(c_stats.load_failures, cxx.load_failures);
  EXPECT_EQ(c_stats.saves, cxx.saves);
  EXPECT_EQ(c_stats.save_failures, cxx.save_failures);
  EXPECT_EQ(c_stats.size, 1u);

  // The two failure counters also surface through the global C stats.
  shalom_stats g_stats;
  shalom_get_stats(&g_stats);
  EXPECT_EQ(g_stats.table_load_failures, cxx.load_failures);
  EXPECT_EQ(g_stats.table_records_rejected, cxx.records_rejected);
}

TEST_F(TableTest, CapiHotShapeSnapshotSeesWarmCache) {
  EXPECT_EQ(shalom_plan_cache_hot(nullptr, 4), -SHALOM_ERR_NULL_POINTER);
  shalom_hot_shape shapes[8];
  EXPECT_EQ(shalom_plan_cache_hot(shapes, 0), 0);
  EXPECT_EQ(shalom_plan_cache_hot(shapes, 8), 0);  // cold cache

  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  gemm_cached<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
                     p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  const int n = shalom_plan_cache_hot(shapes, 8);
  ASSERT_GT(n, 0);
  bool found = false;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(shapes[i].dtype == 's' || shapes[i].dtype == 'd');
    EXPECT_TRUE(shapes[i].trans_a == 'N' || shapes[i].trans_a == 'T');
    if (shapes[i].dtype == 's' && shapes[i].m == 8 && shapes[i].n == 8 &&
        shapes[i].k == 8)
      found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Ambient chaos: with SHALOM_FAULT arming table.* sites (the tier-1
// persistence-chaos stage), every save either commits fully or leaves the
// last good table byte-identical, and every load either seeds validly or
// degrades cold. Invariants only - no deterministic counter expectations.
// ---------------------------------------------------------------------------

TEST(TableChaos, CommitsAreAllOrNothingUnderAmbientFaults) {
  tuning::table_clear();
  PlanCache<float>::global().clear();
  PlanCache<double>::global().clear();
  const std::string path = test_path("chaos");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  std::vector<unsigned char> last_good;
  std::size_t last_good_records = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(tuning::table_record(
        make_record(i % 2 == 0 ? 's' : 'd', 8 + static_cast<index_t>(i),
                    8, 8)));
    const std::size_t registered = tuning::table_size();
    const shalom_status st = tuning::table_save(path.c_str());
    ASSERT_TRUE(st == SHALOM_OK || st == SHALOM_ERR_TABLE);
    if (st == SHALOM_OK) {
      last_good = read_file(path);
      last_good_records = registered;
      ASSERT_EQ(last_good.size(),
                kTableHeaderBytes + registered * kTableRecordBytes);
    } else if (!last_good.empty()) {
      // Failed commit: the previous table survives byte-identical.
      ASSERT_EQ(read_file(path), last_good) << "iteration " << i;
    } else {
      ASSERT_FALSE(file_exists(path)) << "iteration " << i;
    }

    tuning::table_clear();
    const shalom_status lst = tuning::table_load(path.c_str());
    ASSERT_TRUE(lst == SHALOM_OK || lst == SHALOM_ERR_TABLE);
    if (lst == SHALOM_OK) {
      ASSERT_EQ(tuning::table_size(), last_good_records);
    } else {
      ASSERT_EQ(tuning::table_size(), 0u);  // cold start, nothing partial
      // Re-register what the file holds so the next iteration's registry
      // matches the last good table plus its new record.
      if (!last_good.empty()) {
        fault::disarm_all();
        ASSERT_EQ(tuning::table_load(path.c_str()), SHALOM_OK);
      }
    }
  }
  fault::disarm_all();
  tuning::table_clear();
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// Startup pre-seed env knob: registered by tests/CMakeLists.txt with
// SHALOM_TUNED_TABLE pointing at a missing file; run bare, it skips.
// ---------------------------------------------------------------------------

TEST(TableEnv, MissingPreseedFileDegradesColdly) {
  const char* path = std::getenv("SHALOM_TUNED_TABLE");
  if (path == nullptr)
    GTEST_SKIP() << "SHALOM_TUNED_TABLE not set (CMake wrapper only)";
  // The static-init load at process start already ran and failed; that
  // must have been counted and must not impair the library.
  EXPECT_GE(robustness_stats().table_load_failures, 1u);
  EXPECT_EQ(tuning::table_size(), 0u);
  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  p.run_reference(1.0f, 0.0f);
  gemm_cached<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
                     p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  p.expect_matches("env preseed degradation");
}

}  // namespace
}  // namespace shalom
