// Execution guard-rail suite (common/guard.h): trap-contained selfcheck
// probes, the thread-pool watchdog, and guarded pack arenas.
//
// Covers all three rails end to end: a probe that raises a real hardware
// trap (and one simulated through the guard.trap fault site) quarantines
// its variant while GEMM completes bitwise-identically to the scalar
// baseline; a fault-wedged pool worker trips the watchdog and the round
// still runs every task exactly once; a violated arena canary fails the
// call with SHALOM_ERR_CORRUPTION / corruption_error and quarantines the
// dispatched kernel family. Each TEST runs in its own process under ctest
// (gtest_discover_tests), so quarantine verdicts, degraded pools and mode
// overrides never leak between tests. The GuardEnv tests are registered
// with SHALOM_GUARD / SHALOM_WATCHDOG_MS environment values by
// tests/CMakeLists.txt to cover the env-var path; run bare they skip.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/naive.h"
#include "common/aligned_buffer.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/guard.h"
#include "common/selfcheck.h"
#include "core/plan.h"
#include "core/shalom.h"
#include "core/shalom_c.h"
#include "core/threadpool.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

/// Resets quarantine verdicts AND the plan caches that snapshot them.
void reset_guard_world() {
  selfcheck::reset_for_testing();
  PlanCache<float>::global().clear();
  PlanCache<double>::global().clear();
}

template <typename T>
void expect_bitwise(const Matrix<T>& got, const Matrix<T>& want,
                    const char* context) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (index_t i = 0; i < got.rows(); ++i)
    for (index_t j = 0; j < got.cols(); ++j)
      ASSERT_EQ(std::memcmp(&got(i, j), &want(i, j), sizeof(T)), 0)
          << context << ": mismatch at (" << i << "," << j << "): "
          << got(i, j) << " vs " << want(i, j);
}

class GuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    robustness_stats_reset();
  }
  void TearDown() override {
    fault::disarm_all();
    selfcheck::set_probe_body_for_testing(nullptr);
    guard::clear_arena_mode_for_testing();   // back to the env default
    guard::set_watchdog_ms_for_testing(-1);  // back to the env default
  }
};

// ---------------------------------------------------------------------------
// Trap scopes (guard::run_trapped)
// ---------------------------------------------------------------------------

void crash_null_write(void*) {
  volatile int* p = nullptr;
  *p = 42;  // SIGSEGV, contained by the active trap scope
}

void crash_raise_ill(void*) { std::raise(SIGILL); }

void bump_counter(void* ctx) { ++*static_cast<int*>(ctx); }

TEST_F(GuardTest, TrapScopeContainsSegfault) {
  if (!guard::traps_supported())
    GTEST_SKIP() << "trap containment compiled out on this build";
  const guard::TrapOutcome out = guard::run_trapped(crash_null_write, nullptr);
  EXPECT_TRUE(out.trapped);
  EXPECT_EQ(out.signal, SIGSEGV);
  EXPECT_STREQ(guard::signal_name(out.signal), "SIGSEGV");
}

TEST_F(GuardTest, TrapScopeContainsRaisedSigill) {
  if (!guard::traps_supported())
    GTEST_SKIP() << "trap containment compiled out on this build";
  const guard::TrapOutcome out = guard::run_trapped(crash_raise_ill, nullptr);
  EXPECT_TRUE(out.trapped);
  EXPECT_EQ(out.signal, SIGILL);
  EXPECT_STREQ(guard::signal_name(out.signal), "SIGILL");
}

TEST_F(GuardTest, TrapScopePassthroughRunsTheFunction) {
  int calls = 0;
  const guard::TrapOutcome out = guard::run_trapped(bump_counter, &calls);
  EXPECT_FALSE(out.trapped);
  EXPECT_EQ(out.signal, 0);
  EXPECT_EQ(calls, 1);
}

TEST_F(GuardTest, TrapScopeRestoresPriorDisposition) {
  if (!guard::traps_supported())
    GTEST_SKIP() << "trap containment compiled out on this build";
  // Install a recognizable prior disposition, run a trapping scope, and
  // prove the scope put the prior back instead of leaving its own handler.
  struct sigaction prior;
  std::memset(&prior, 0, sizeof prior);
  prior.sa_handler = SIG_IGN;
  sigemptyset(&prior.sa_mask);
  ASSERT_EQ(sigaction(SIGILL, &prior, nullptr), 0);

  const guard::TrapOutcome out = guard::run_trapped(crash_raise_ill, nullptr);
  EXPECT_TRUE(out.trapped);

  struct sigaction now;
  ASSERT_EQ(sigaction(SIGILL, nullptr, &now), 0);
  EXPECT_EQ(now.sa_handler, SIG_IGN);

  prior.sa_handler = SIG_DFL;
  ASSERT_EQ(sigaction(SIGILL, &prior, nullptr), 0);
}

TEST_F(GuardTest, FaultSiteSimulatesTrapWithoutRunningTheScope) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  int calls = 0;
  fault::arm(fault::Site::kGuardTrap, fault::Mode::kOnce);
  const guard::TrapOutcome out = guard::run_trapped(bump_counter, &calls);
  EXPECT_TRUE(out.trapped);
  EXPECT_NE(out.signal, 0);
  EXPECT_EQ(calls, 0) << "a simulated trap must not run the scoped call";
  EXPECT_GT(fault::injected(fault::Site::kGuardTrap), 0u);
}

// ---------------------------------------------------------------------------
// Trap-contained probes -> quarantine -> scalar rerouting
// ---------------------------------------------------------------------------

TEST_F(GuardTest, TrappedProbesQuarantineEveryVariantBitwise) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  reset_guard_world();

  fault::arm(fault::Site::kGuardTrap, fault::Mode::kEveryN, 1);
  EXPECT_EQ(selfcheck::run_all(), selfcheck::kVariantCount);
  fault::disarm_all();

  const RobustnessStats s = robustness_stats();
  EXPECT_GE(s.kernels_trapped,
            static_cast<std::uint64_t>(selfcheck::kVariantCount));
  EXPECT_GE(s.kernels_quarantined,
            static_cast<std::uint64_t>(selfcheck::kVariantCount));
  EXPECT_EQ(detail::last_error_code(), SHALOM_ERR_KERNEL_TRAP);
  EXPECT_GT(std::strlen(detail::last_error_message()), 0u);

  // With every optimized kernel quarantined, GEMM must route to the
  // scalar reference and match the naive oracle bit for bit.
  const index_t M = 33, N = 29, K = 24;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;
  gemm(Trans::N, Trans::N, M, N, K, 1.25f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);
  baselines::naive_gemm({Trans::N, Trans::N}, M, N, K, 1.25f, p.a.data(),
                        p.a.ld(), p.b.data(), p.b.ld(), 0.5f, p.c_ref.data(),
                        p.c_ref.ld());
  expect_bitwise(p.c, p.c_ref, "all-trapped dispatch vs naive");
}

bool crashing_probe_body(selfcheck::Variant v) {
  if (v == selfcheck::Variant::kMainF32PackedPacked) {
    volatile int* p = nullptr;
    *p = 1;  // a real kernel crash, contained by the probe's trap scope
  }
  return true;
}

TEST_F(GuardTest, RealCrashingProbeIsContainedAndQuarantined) {
  if (!guard::traps_supported())
    GTEST_SKIP() << "trap containment compiled out on this build";
  reset_guard_world();
  selfcheck::set_probe_body_for_testing(crashing_probe_body);

  const auto bad = selfcheck::Variant::kMainF32PackedPacked;
  EXPECT_FALSE(selfcheck::variant_ok(bad));
  EXPECT_EQ(selfcheck::status(bad), selfcheck::Status::kQuarantined);
  EXPECT_GE(robustness_stats().kernels_trapped, 1u);
  EXPECT_EQ(detail::last_error_code(), SHALOM_ERR_KERNEL_TRAP);

  // Sibling variants probe clean through the same registered body.
  EXPECT_TRUE(selfcheck::variant_ok(selfcheck::Variant::kMainF64PackedPacked));

  selfcheck::set_probe_body_for_testing(nullptr);
}

TEST_F(GuardTest, QuarantineOverridesAnEarlierVerifiedVerdict) {
  reset_guard_world();
  const auto v = selfcheck::Variant::kWide128;
  EXPECT_TRUE(selfcheck::variant_ok(v));
  ASSERT_EQ(selfcheck::status(v), selfcheck::Status::kVerified);

  selfcheck::quarantine(v);
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kQuarantined);
  EXPECT_FALSE(selfcheck::variant_ok(v));
  const std::uint64_t count = robustness_stats().kernels_quarantined;
  EXPECT_GE(count, 1u);

  // Idempotent: re-quarantining does not double-count.
  selfcheck::quarantine(v);
  EXPECT_EQ(robustness_stats().kernels_quarantined, count);
}

TEST_F(GuardTest, TrappedSelftestSurfacesOverTheCApi) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  reset_guard_world();
  shalom_reset_stats();

  fault::arm(fault::Site::kGuardTrap, fault::Mode::kEveryN, 1);
  EXPECT_EQ(shalom_selftest(), selfcheck::kVariantCount);
  fault::disarm_all();

  shalom_stats st;
  shalom_get_stats(&st);
  EXPECT_GE(st.kernels_trapped,
            static_cast<std::uint64_t>(selfcheck::kVariantCount));
  EXPECT_GE(st.kernels_quarantined,
            static_cast<std::uint64_t>(selfcheck::kVariantCount));
  EXPECT_GT(std::strlen(shalom_strerror(SHALOM_ERR_KERNEL_TRAP)), 0u);
}

// ---------------------------------------------------------------------------
// Thread-pool watchdog
// ---------------------------------------------------------------------------

TEST_F(GuardTest, WatchdogRecoversAWedgedWorker) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  ThreadPool pool(4);
  if (pool.max_threads() < 4)
    GTEST_SKIP() << "could not spawn 3 workers on this host";
  EXPECT_FALSE(pool.degraded());

  // Wedge exactly one worker at round pickup: it parks before claiming
  // its task, which is the stall the watchdog leader must recover.
  std::atomic<int> runs[4] = {{0}, {0}, {0}, {0}};
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kOnce);
  pool.parallel_for(
      4, [&](int t) { runs[t].fetch_add(1, std::memory_order_relaxed); },
      /*watchdog_ms=*/100);
  fault::disarm_all();

  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(runs[t].load(std::memory_order_relaxed), 1)
        << "task " << t << " must run exactly once";
  EXPECT_TRUE(pool.degraded());
  EXPECT_GE(robustness_stats().watchdog_trips, 1u);

  // The wedged worker never comes back, but a later round on the same
  // pool still completes with every task intact: under the work-stealing
  // scheduler the live workers absorb the missing worker's share (its
  // queued hints are stealable, its unclaimed tasks redistributable), so
  // a second trip is NOT required - only exactly-once execution is.
  std::atomic<int> again[4] = {{0}, {0}, {0}, {0}};
  pool.parallel_for(
      4, [&](int t) { again[t].fetch_add(1, std::memory_order_relaxed); },
      /*watchdog_ms=*/100);
  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(again[t].load(std::memory_order_relaxed), 1);
  EXPECT_GE(robustness_stats().watchdog_trips, 1u);
}

TEST_F(GuardTest, WatchdogTripDuringParallelGemmKeepsResultsCorrect) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  guard::set_watchdog_ms_for_testing(200);

  const index_t M = 96, N = 120, K = 40;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;  // snapshots watchdog_ms = 200 from the override
  cfg.threads = 3;
  ASSERT_EQ(cfg.watchdog_ms, 200);

  // Wedge one global-pool worker; whichever round it hits (the plan
  // warm-up or the execution), the watchdog must recover it and the
  // result must match the oracle.
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kOnce);
  gemm(Trans::N, Trans::N, M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.25f, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  EXPECT_GE(robustness_stats().watchdog_trips, 1u);
  p.run_reference(1.0f, 0.25f);
  p.expect_matches("watchdog-recovered parallel GEMM");
}

TEST_F(GuardTest, ConfigAndPlanSnapshotTheWatchdogPeriod) {
  guard::set_watchdog_ms_for_testing(1234);
  Config cfg;
  EXPECT_EQ(cfg.watchdog_ms, 1234);
  const GemmPlan<float> plan =
      plan_create<float>({Trans::N, Trans::N}, 32, 32, 32, cfg);
  EXPECT_EQ(plan.watchdog_ms, 1234);

  guard::set_watchdog_ms_for_testing(0);
  Config off;
  EXPECT_EQ(off.watchdog_ms, 0);
}

TEST_F(GuardTest, RetiredPoolListStaysBounded) {
  // An adversarial grow-loop must not accumulate retired pools without
  // bound: each Handle acquisition reaps quiesced retirees past the
  // registry cap (4; see core/threadpool.cpp).
  for (int t = 2; t <= 20; ++t) {
    ThreadPool::Handle handle(t);
    EXPECT_GE(handle.pool().max_threads(), 1);
  }
  EXPECT_LE(ThreadPool::retired_pool_count_for_testing(), 4);
}

// ---------------------------------------------------------------------------
// Guarded arenas
// ---------------------------------------------------------------------------

TEST_F(GuardTest, UnguardedBufferHasNoZonesAndAlwaysVerifies) {
  guard::set_arena_mode_for_testing(guard::ArenaMode::kOff);
  AlignedBuffer buf;
  buf.reserve(256);
  EXPECT_EQ(buf.guard_zone(), 0u);
  EXPECT_TRUE(buf.verify_guards());
}

TEST_F(GuardTest, CanaryDetectsFrontAndBackOverwrites) {
  guard::set_arena_mode_for_testing(guard::ArenaMode::kCanary);
  AlignedBuffer buf;
  buf.reserve(256);  // multiple of the cache line: back zone starts at 256
  ASSERT_NE(buf.data(), nullptr);
  ASSERT_EQ(buf.guard_zone(), guard::kGuardZoneBytes);
  EXPECT_TRUE(buf.verify_guards());

  unsigned char* bytes = static_cast<unsigned char*>(buf.data());
  bytes[-1] ^= 0xFFu;  // clobber the front zone
  EXPECT_FALSE(buf.verify_guards());
  EXPECT_TRUE(buf.verify_guards()) << "violated zones must be re-armed";

  bytes[buf.capacity()] ^= 0xFFu;  // clobber the back zone
  EXPECT_FALSE(buf.verify_guards());
  EXPECT_TRUE(buf.verify_guards());
}

TEST_F(GuardTest, PoisonModePrefillsStorageOnEveryReserve) {
  guard::set_arena_mode_for_testing(guard::ArenaMode::kPoison);
  AlignedBuffer buf;
  buf.reserve(128);
  unsigned char* bytes = static_cast<unsigned char*>(buf.data());
  for (std::size_t i = 0; i < 128; ++i)
    ASSERT_EQ(bytes[i], guard::kPoisonByte) << "offset " << i;

  // The reuse path must re-poison too: stale data from the previous call
  // never survives into the next one.
  std::memset(bytes, 0, 128);
  buf.reserve(64);
  for (std::size_t i = 0; i < 64; ++i)
    ASSERT_EQ(bytes[i], guard::kPoisonByte) << "offset " << i;
}

TEST_F(GuardTest, CanaryViolationFailsGemmAndQuarantines) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  reset_guard_world();
  guard::set_arena_mode_for_testing(guard::ArenaMode::kCanary);

  // A packing shape (K*N well past L1, the same one the fault suite
  // proves reserves the arena), so the post-execution canary audit runs.
  const index_t M = 64, N = 256, K = 256;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  fault::arm(fault::Site::kGuardCanary, fault::Mode::kOnce);
  EXPECT_THROW(gemm(Trans::N, Trans::N, M, N, K, 1.0f, p.a.data(), p.a.ld(),
                    p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg),
               corruption_error);
  fault::disarm_all();

  const RobustnessStats s = robustness_stats();
  EXPECT_GE(s.arena_corruptions, 1u);
  EXPECT_GE(s.kernels_quarantined, 1u)
      << "the dispatched kernel family must be quarantined";
}

TEST_F(GuardTest, CanaryViolationSurfacesOverTheCApi) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  reset_guard_world();
  shalom_reset_stats();
  guard::set_arena_mode_for_testing(guard::ArenaMode::kCanary);

  const index_t M = 64, N = 256, K = 256;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);

  fault::arm(fault::Site::kGuardCanary, fault::Mode::kOnce);
  const int rc =
      shalom_sgemm('N', 'N', M, N, K, 1.0f, p.a.data(), p.a.ld(),
                   p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), 1);
  fault::disarm_all();

  EXPECT_EQ(rc, SHALOM_ERR_CORRUPTION);
  EXPECT_GT(std::strlen(shalom_last_error_message()), 0u);
  shalom_stats st;
  shalom_get_stats(&st);
  EXPECT_GE(st.arena_corruptions, 1u);
  EXPECT_GE(st.kernels_quarantined, 1u);
}

// ---------------------------------------------------------------------------
// Environment-variable plumbing (registered with ENVIRONMENT by
// tests/CMakeLists.txt; run without the wrapper they skip).
// ---------------------------------------------------------------------------

TEST(GuardEnv, ArenaModeComesFromEnvironment) {
  const char* v = std::getenv("SHALOM_GUARD");
  if (v == nullptr || std::string(v) != "canary")
    GTEST_SKIP() << "run via the GuardEnv ctest wrapper";
  EXPECT_EQ(guard::arena_mode(), guard::ArenaMode::kCanary);
  AlignedBuffer buf;
  buf.reserve(64);
  EXPECT_EQ(buf.guard_zone(), guard::kGuardZoneBytes);
  EXPECT_TRUE(buf.verify_guards());
}

TEST(GuardEnv, WatchdogPeriodComesFromEnvironment) {
  const char* v = std::getenv("SHALOM_WATCHDOG_MS");
  if (v == nullptr) GTEST_SKIP() << "run via the GuardEnv ctest wrapper";
  const int want = std::atoi(v);
  EXPECT_EQ(guard::env_watchdog_ms(), want);
  Config cfg;
  EXPECT_EQ(cfg.watchdog_ms, want);
}

}  // namespace
}  // namespace shalom
