// Tests for the analytic models (paper Eq. 1-4): the tile solver must
// reproduce the paper's constants and respect the register budget across
// the whole parameter space; the blocking, packing-decision and partition
// solvers must satisfy their documented invariants.
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "core/model.h"

namespace shalom::model {
namespace {

TEST(TileSolver, PaperConstantsFp32) {
  // 32 registers, 128-bit vectors, FP32 (j = 4): paper Section 5.2.3.
  const Tile t = solve_tile(32, 4);
  EXPECT_EQ(t.mr, 7);
  EXPECT_EQ(t.nr, 12);
}

TEST(TileSolver, PaperConstantsFp64) {
  // FP64 (j = 2): nr = 6 (paper Section 4.2 "12 or 6").
  const Tile t = solve_tile(32, 2);
  EXPECT_EQ(t.mr, 7);
  EXPECT_EQ(t.nr, 6);
}

TEST(TileSolver, CmrFormula) {
  EXPECT_DOUBLE_EQ(tile_cmr(7, 12), 2.0 * 7 * 12 / 19.0);
  EXPECT_DOUBLE_EQ(tile_cmr(1, 4), 8.0 / 5.0);
}

class TileSolverSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TileSolverSweep, SatisfiesRegisterBudgetAndBeatsNeighbours) {
  const auto [regs, lanes] = GetParam();
  const Tile t = solve_tile(regs, lanes);
  ASSERT_GE(t.mr, 1);
  ASSERT_GE(t.nr, lanes);
  EXPECT_EQ(t.nr % lanes, 0) << "Eq.1: nr must be a lane multiple";
  const int used = t.mr + t.nr / lanes + t.mr * (t.nr / lanes);
  EXPECT_LE(used, regs - 1) << "Eq.1: register budget";

  // Optimality: no feasible tile has strictly higher CMR.
  const double best = tile_cmr(t.mr, t.nr);
  for (int mr = 1; mr <= regs; ++mr) {
    for (int nr = lanes; nr <= regs * lanes; nr += lanes) {
      if (mr + nr / lanes + mr * (nr / lanes) > regs - 1) continue;
      EXPECT_LE(tile_cmr(mr, nr), best + 1e-12)
          << "better tile exists: " << mr << "x" << nr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RegisterFiles, TileSolverSweep,
    ::testing::Combine(::testing::Values(16, 24, 32, 48, 64),
                       ::testing::Values(2, 4, 8, 16)));

TEST(Blocking, RespectsCachesAndTiles) {
  const auto mach = arch::kunpeng_920();
  const Tile t{7, 12};
  const Blocking b = solve_blocking<float>(mach, t, 1000, 2000, 3000);
  EXPECT_GE(b.kc, t.nr);
  // One Bc sliver must fit in half the L1.
  EXPECT_LE(static_cast<std::size_t>(b.kc * t.nr) * sizeof(float),
            mach.l1d.size_bytes);
  // mc/nc are tile multiples unless clamped by the problem edge.
  EXPECT_TRUE(b.mc % t.mr == 0 || b.mc == 1000) << b.mc;
  EXPECT_TRUE(b.nc % t.nr == 0 || b.nc == 2000) << b.nc;
  // A block within half the (per-core) L2.
  EXPECT_LE(static_cast<std::size_t>(b.mc * b.kc) * sizeof(float),
            mach.l2.size_bytes);
}

TEST(Blocking, ClampsToProblem) {
  const auto mach = arch::thunderx2();
  const Blocking b = solve_blocking<float>(mach, {7, 12}, 5, 9, 3);
  EXPECT_LE(b.kc, 12);  // clamped near K but >= nr floor
  EXPECT_GE(b.mc, 7);
  EXPECT_GE(b.nc, 12);
}

TEST(PackDecision, SmallBIsNotPackedUnderNN) {
  const auto mach = arch::phytium_2000p();  // L1 = 32 KB
  Config cfg;
  // 64x64 FP32 B = 16 KB < L1.
  const auto d =
      decide_packing<float>(mach, {Trans::N, Trans::N}, 64, 64, 64, cfg);
  EXPECT_EQ(d.a, PackPlan::kNone);
  EXPECT_EQ(d.b, PackPlan::kNone);
}

TEST(PackDecision, LargeBIsFusedPackedUnderNN) {
  const auto mach = arch::phytium_2000p();
  Config cfg;
  const auto d = decide_packing<float>(mach, {Trans::N, Trans::N}, 64,
                                       4096, 512, cfg);
  EXPECT_EQ(d.a, PackPlan::kNone);
  EXPECT_EQ(d.b, PackPlan::kPackFused);
}

TEST(PackDecision, TransposedBAlwaysPacked) {
  const auto mach = arch::phytium_2000p();
  Config cfg;
  const auto d =
      decide_packing<float>(mach, {Trans::N, Trans::T}, 8, 8, 8, cfg);
  EXPECT_EQ(d.b, PackPlan::kPackFused);
  EXPECT_EQ(d.a, PackPlan::kNone);
}

TEST(PackDecision, TransposedAIsPacked) {
  const auto mach = arch::phytium_2000p();
  Config cfg;
  const auto d =
      decide_packing<float>(mach, {Trans::T, Trans::N}, 64, 64, 64, cfg);
  EXPECT_NE(d.a, PackPlan::kNone);
}

TEST(PackDecision, PackAheadOnlyBeyondLlc) {
  const auto mach = arch::phytium_2000p();  // LLC = 2 MB L2
  Config cfg;
  const auto small = decide_packing<float>(mach, {Trans::N, Trans::N}, 64,
                                           512, 256, cfg);
  EXPECT_EQ(small.pack_ahead, 0);
  const auto big = decide_packing<float>(mach, {Trans::N, Trans::N}, 64,
                                         50176, 576, cfg);
  EXPECT_EQ(big.pack_ahead, 1);
}

TEST(PackDecision, AblationFlagsForceBaseline) {
  const auto mach = arch::phytium_2000p();
  Config cfg;
  cfg.selective_packing = false;
  const auto d =
      decide_packing<float>(mach, {Trans::N, Trans::N}, 8, 8, 8, cfg);
  EXPECT_EQ(d.a, PackPlan::kPackAhead);
  EXPECT_EQ(d.b, PackPlan::kPackAhead);

  Config cfg2;
  cfg2.fused_packing = false;
  const auto d2 = decide_packing<float>(mach, {Trans::N, Trans::T}, 64,
                                        4096, 512, cfg2);
  EXPECT_EQ(d2.b, PackPlan::kPackAhead);
}

TEST(Partition, PaperExample) {
  // Paper Section 6.1: M = 2048, N = 256, T = 64 -> Tn = 4, Tm = 16.
  const Partition p = solve_partition(64, 2048, 256, {7, 12});
  EXPECT_EQ(p.tn, 4);
  EXPECT_EQ(p.tm, 16);
}

class PartitionSweep
    : public ::testing::TestWithParam<
          std::tuple<int, index_t, index_t>> {};

TEST_P(PartitionSweep, Invariants) {
  const auto [threads, m, n] = GetParam();
  const Tile tile{7, 12};
  const Partition p = solve_partition(threads, m, n, tile);
  EXPECT_GE(p.tm, 1);
  EXPECT_GE(p.tn, 1);
  const int t = p.tm * p.tn;
  EXPECT_LE(t, threads);
  EXPECT_EQ(t % p.tn, 0);
  // Every thread owns at least one register tile in each dimension.
  EXPECT_LE(p.tm, (m + tile.mr - 1) / tile.mr);
  EXPECT_LE(p.tn, (n + tile.nr - 1) / tile.nr);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 16, 32, 64),
                       ::testing::Values<index_t>(1, 7, 32, 64, 2048, 50176),
                       ::testing::Values<index_t>(1, 12, 32, 256, 10240)));

TEST(Partition, SkinnyNGoesToRows) {
  // M huge, N tiny: threads should mostly stack along M.
  const Partition p = solve_partition(64, 50176, 24, {7, 12});
  EXPECT_LE(p.tn, 2);
  EXPECT_GE(p.tm, 32);
}

TEST(Partition, SkinnyMGoesToColumns) {
  const Partition p = solve_partition(64, 24, 50176, {7, 12});
  EXPECT_LE(p.tm, 2);
  EXPECT_GE(p.tn, 32);
}

}  // namespace
}  // namespace shalom::model
