// Fixture: lock-order - the reverse acquisition order of
// lock_order_ab.cpp; together the two TUs deadlock under contention.
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex&) {} };
extern Mutex fix_mu_a;
extern Mutex fix_mu_b;
void fixture_hold_b_then_a() {
  MutexLock hold_b(fix_mu_b);
  MutexLock hold_a(fix_mu_a);
}
