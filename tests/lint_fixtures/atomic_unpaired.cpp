// Fixture: atomic-pairing - a release store nobody acquires, an acquire
// load nobody releases, and a correctly paired flag for contrast.
#include <atomic>
std::atomic<int> fix_unpaired_flag{0};
std::atomic<int> fix_orphan_reader{0};
std::atomic<int> fix_paired{0};
void fixture_atomics(int v) {
  fix_unpaired_flag.store(v, std::memory_order_release);
  (void)fix_orphan_reader.load(std::memory_order_acquire);
  fix_paired.store(v, std::memory_order_release);
  (void)fix_paired.load(std::memory_order_acquire);
}
