// Fake test blob for the registry-drift fixture. The analyzer reads the
// --tests directory as raw text, so mentions in comments count as
// coverage - and a comment-only file stays clean when this directory is
// itself swept as lint input.
//
//   arms fault site drift.armed_site via chaos injection
//   asserts SHALOM_DRIFT_TESTED round-trips through the C API
//   asserts SHALOM_DRIFT_NO_STRERROR is returned on overflow
//   asserts SHALOM_DRIFT_NO_APIROW is returned on a bad handle
//   asserts drift_documented_counter and drift_orphan_counter move
//   sets SHALOM_DRIFT_DOCUMENTED_KEY and SHALOM_DRIFT_ORPHAN_KEY in a
//   wrapper, and SHALOM_FIXTURE for the env_access fixture
//
// The orphan site, the untested status code, the untested counter and
// the untested env key are deliberately absent (naming them here would
// count as coverage: the analyzer reads this blob as raw text).
