// Fake test blob for the registry-drift fixture. The analyzer reads the
// --tests directory as raw text, so mentions in comments count as
// coverage - and a comment-only file stays clean when this directory is
// itself swept as lint input.
//
//   arms fault site drift.armed_site via chaos injection
//   asserts SHALOM_DRIFT_TESTED round-trips through the C API
//   asserts SHALOM_DRIFT_NO_STRERROR is returned on overflow
//   asserts SHALOM_DRIFT_NO_APIROW is returned on a bad handle
//
// The orphan site and the untested status code are deliberately absent.
