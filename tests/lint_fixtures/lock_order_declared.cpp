// Fixture: lock-order - a declared hierarchy edge contradicted by the
// observed acquisition order below (no full cycle needed).
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex&) {} };
extern Mutex fix_declared_a;
extern Mutex fix_declared_b;
// shalom-lint: lock-order(fix_declared_a before fix_declared_b)
void fixture_declared_backwards() {
  MutexLock hold_b(fix_declared_b);
  MutexLock hold_a(fix_declared_a);
}
