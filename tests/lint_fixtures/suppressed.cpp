// Fixture: a seeded violation silenced by a suppression comment.
#include <atomic>

// The implicit order below is deliberate fixture noise.
// shalom-lint: allow(atomic-memory-order)
int quiet_load(std::atomic<int>& a) { return a.load(); }
