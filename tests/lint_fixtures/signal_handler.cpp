// signal-handler-safety fixture: the handler registered through
// sa_handler below reaches stdio and the allocator, neither of which is
// async-signal-safe.
#include <csignal>
#include <cstdio>
void fixture_handler(int sig) {
  std::fprintf(stderr, "caught %d\n", sig);
  int* keep = new int(sig);
  (void)keep;
}
void fixture_install() {
  struct sigaction sa;
  sa.sa_handler = fixture_handler;
  sigaction(SIGSEGV, &sa, nullptr);
}
