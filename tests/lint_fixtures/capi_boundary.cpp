// Fixture: capi-exception-boundary - an unwrapped extern "C" entry.
extern "C" int shalom_fixture_entry(int x) { return x + 1; }
