// Fixture: unbounded-wait - one bare CV wait outside a predicate loop.
#include <condition_variable>
#include <mutex>

void bad_wait(std::condition_variable& done_cv,
              std::unique_lock<std::mutex>& lock) {
  done_cv.wait(lock);
}

// Guarded and deadline forms pass.
void good_waits(std::condition_variable& done_cv,
                std::unique_lock<std::mutex>& lock, bool& done) {
  while (!done) done_cv.wait(lock);
  done_cv.wait(lock, [&] { return done; });
  done_cv.wait_for(lock, std::chrono::milliseconds(5));
}
