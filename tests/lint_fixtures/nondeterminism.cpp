// Fixture: nondeterminism - rand() and time(nullptr) seeding.
#include <cstdlib>
#include <ctime>

int bad_rand() { return std::rand(); }
long bad_seed() { return static_cast<long>(std::time(nullptr)); }
