// Fixture: fault-site-documented - a site DESIGN.md does not list.
namespace fault { enum class Site { kBogus }; }

const char* site_name(fault::Site) { return "bogus.site"; }
