#!/bin/sh
# Fake tier1 script for the registry-drift fixture: arms nothing, so
# arming coverage must come from the fake test blob alone.
exit 0
