// Fixture: raw-alloc - malloc and array new outside aligned_buffer.
#include <cstdlib>

void* bad_malloc(unsigned n) { return std::malloc(n); }
float* bad_new(unsigned n) { return new float[n]; }
