// Fixture: env-access - direct getenv outside common/error.cpp.
#include <cstdlib>

const char* bad_env() { return std::getenv("SHALOM_FIXTURE"); }
