// Fixture: registry-drift - registries that drift from the fake docs
// (drift_design.md, drift_api.md), fake tests (drift_tests/) and fake
// tier1 script (drift_tier1.sh) the lint tests point the analyzer at.
namespace fault { enum class Site : int { kDriftArmed, kDriftOrphan }; }
const char* site_name(fault::Site s) {
  switch (s) {
    case fault::Site::kDriftArmed: return "drift.armed_site";
    case fault::Site::kDriftOrphan: return "drift.orphan_site";
  }
  return "unreachable";
}
typedef enum shalom_status {
  SHALOM_DRIFT_TESTED = 0,
  SHALOM_DRIFT_NO_STRERROR = 1,
  SHALOM_DRIFT_NO_APIROW = 2,
  SHALOM_DRIFT_NO_TEST = 3
} shalom_status;
const char* status_string(int code) {
  switch (code) {
    case SHALOM_DRIFT_TESTED: return "ok";
    case SHALOM_DRIFT_NO_APIROW: return "missing api row";
    case SHALOM_DRIFT_NO_TEST: return "untested";
  }
  return "unknown";
}
struct RobustnessStats {
  uint64_t drift_documented_counter;
  uint64_t drift_orphan_counter;
  uint64_t drift_untested_counter;
};
const char* fixture_env_keys[] = {"SHALOM_DRIFT_DOCUMENTED_KEY",
                                  "SHALOM_DRIFT_ORPHAN_KEY",
                                  "SHALOM_DRIFT_UNTESTED_KEY"};
