// Fixture: atomic-memory-order - one implicit-seq_cst load.
#include <atomic>

int bad_load(std::atomic<int>& a) { return a.load(); }
