// Fixture: unchecked-io - discarded libc I/O results.
#include <cstdio>

void bad_io(std::FILE* f, const char* from, const char* to) {
  std::fwrite(from, 1, 4, f);
  std::fclose(f);
  if (f != nullptr) std::rename(from, to);
}

// Consumed or deliberately discarded results pass; member calls and
// non-std qualifiers are repo wrappers, not libc.
struct FakeFile {
  bool fclose() { return true; }
};

bool good_io(std::FILE* f, const char* from, const char* to, FakeFile& ff) {
  char buf[4];
  if (std::fwrite(buf, 1, 4, f) != 4) return false;
  const bool renamed = std::rename(from, to) == 0;
  (void)std::fclose(f);
  ff.fclose();
  return renamed && std::fread(buf, 1, 4, f) == 4;
}
