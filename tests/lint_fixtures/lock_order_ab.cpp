// Fixture: lock-order - acquires fix_mu_a then fix_mu_b; the sibling
// fixture TU (lock_order_ba.cpp) acquires them in the opposite order,
// closing a cross-TU cycle the analyzer must report with a witness path.
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex&) {} };
extern Mutex fix_mu_a;
extern Mutex fix_mu_b;
void fixture_hold_a_then_b() {
  MutexLock hold_a(fix_mu_a);
  MutexLock hold_b(fix_mu_b);
}
