// Tests for the C API: happy path against the oracle, transpose-flag
// parsing, error codes and thread handling, the opaque plan handle
// (shalom_plan_create / _execute_s / _execute_d / _destroy) including
// every documented error code, the asynchronous stream/future surface
// (shalom_stream_* / shalom_submit_* / shalom_wait), plus the diagnostics
// surface (shalom_strerror, shalom_last_error_message) and overflow
// rejection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/guard.h"
#include "common/health.h"
#include "core/engine.h"
#include "core/shalom_c.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

TEST(CApi, SgemmMatchesOracle) {
  testing::Problem<float> p({Trans::N, Trans::N}, 17, 23, 13);
  const int rc = shalom_sgemm('N', 'N', 17, 23, 13, 1.5f, p.a.data(),
                              p.a.ld(), p.b.data(), p.b.ld(), 0.25f,
                              p.c.data(), p.c.ld(), 1);
  EXPECT_EQ(rc, 0);
  p.run_reference(1.5f, 0.25f);
  p.expect_matches("shalom_sgemm");
}

TEST(CApi, DgemmTransposedLowercase) {
  testing::Problem<double> p({Trans::T, Trans::T}, 11, 9, 21);
  const int rc = shalom_dgemm('t', 't', 11, 9, 21, 1.0, p.a.data(),
                              p.a.ld(), p.b.data(), p.b.ld(), 0.0,
                              p.c.data(), p.c.ld(), 1);
  EXPECT_EQ(rc, 0);
  p.run_reference(1.0, 0.0);
  p.expect_matches("shalom_dgemm");
}

TEST(CApi, InvalidTransFlag) {
  float x[4] = {};
  EXPECT_EQ(shalom_sgemm('X', 'N', 2, 2, 2, 1.f, x, 2, x, 2, 0.f, x, 2, 1),
            1);
}

TEST(CApi, InvalidDimensionsReturnError) {
  float x[4] = {};
  EXPECT_EQ(shalom_sgemm('N', 'N', 2, 2, 2, 1.f, x, /*lda=*/1, x, 2, 0.f,
                         x, 2, 1),
            2);
  EXPECT_EQ(shalom_sgemm('N', 'N', -3, 2, 2, 1.f, x, 2, x, 2, 0.f, x, 2, 1),
            2);
}

TEST(CApi, MultiThreaded) {
  testing::Problem<float> p({Trans::N, Trans::T}, 30, 500, 120);
  const int rc = shalom_sgemm('N', 'T', 30, 500, 120, 1.f, p.a.data(),
                              p.a.ld(), p.b.data(), p.b.ld(), 0.f,
                              p.c.data(), p.c.ld(), 4);
  EXPECT_EQ(rc, 0);
  p.run_reference(1.f, 0.f);
  p.expect_matches("shalom_sgemm threads=4");
}

TEST(CApi, PlanSingleMatchesOracle) {
  testing::Problem<float> p({Trans::N, Trans::T}, 14, 19, 11);
  shalom_plan* plan = nullptr;
  ASSERT_EQ(shalom_plan_create(&plan, 's', 'N', 'T', 14, 19, 11, 1), 0);
  ASSERT_NE(plan, nullptr);

  // Execute twice: a plan is a reusable handle, and the second run must
  // accumulate into the first's output through beta.
  EXPECT_EQ(shalom_plan_execute_s(plan, 1.25f, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), 0.0f, p.c.data(),
                                  p.c.ld()),
            0);
  EXPECT_EQ(shalom_plan_execute_s(plan, 1.25f, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), 1.0f, p.c.data(),
                                  p.c.ld()),
            0);
  shalom_plan_destroy(plan);

  p.run_reference(1.25f, 0.0f);   // first pass
  p.run_reference(1.25f, 1.0f);   // accumulate
  p.expect_matches("plan execute_s twice");
}

TEST(CApi, PlanDoubleMatchesOracle) {
  testing::Problem<double> p({Trans::T, Trans::N}, 21, 8, 33);
  shalom_plan* plan = nullptr;
  ASSERT_EQ(shalom_plan_create(&plan, 'd', 't', 'n', 21, 8, 33, 2), 0);
  EXPECT_EQ(shalom_plan_execute_d(plan, -1.0, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), 0.5, p.c.data(),
                                  p.c.ld()),
            0);
  shalom_plan_destroy(plan);
  p.run_reference(-1.0, 0.5);
  p.expect_matches("plan execute_d");
}

TEST(CApi, PlanCreateErrorPaths) {
  shalom_plan* plan = nullptr;
  // Null out pointer.
  EXPECT_EQ(shalom_plan_create(nullptr, 's', 'N', 'N', 4, 4, 4, 1), 3);
  // Unknown dtype and transpose flags.
  EXPECT_EQ(shalom_plan_create(&plan, 'x', 'N', 'N', 4, 4, 4, 1), 1);
  EXPECT_EQ(plan, nullptr);
  EXPECT_EQ(shalom_plan_create(&plan, 's', 'Q', 'N', 4, 4, 4, 1), 1);
  EXPECT_EQ(shalom_plan_create(&plan, 's', 'N', '?', 4, 4, 4, 1), 1);
  // Negative dimensions.
  EXPECT_EQ(shalom_plan_create(&plan, 's', 'N', 'N', -1, 4, 4, 1), 2);
  EXPECT_EQ(shalom_plan_create(&plan, 'd', 'N', 'N', 4, -2, 4, 1), 2);
  EXPECT_EQ(plan, nullptr);
}

TEST(CApi, PlanExecuteErrorPaths) {
  testing::Problem<float> p({Trans::N, Trans::N}, 6, 6, 6);
  // Null handle.
  EXPECT_EQ(shalom_plan_execute_s(nullptr, 1.f, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), 0.f, p.c.data(),
                                  p.c.ld()),
            3);

  shalom_plan* plan = nullptr;
  ASSERT_EQ(shalom_plan_create(&plan, 's', 'N', 'N', 6, 6, 6, 1), 0);

  // Dtype mismatch: 's' plan driven through the double entry point.
  testing::Problem<double> pd({Trans::N, Trans::N}, 6, 6, 6);
  EXPECT_EQ(shalom_plan_execute_d(plan, 1.0, pd.a.data(), pd.a.ld(),
                                  pd.b.data(), pd.b.ld(), 0.0, pd.c.data(),
                                  pd.c.ld()),
            4);

  // Strides too small for the planned shape.
  EXPECT_EQ(shalom_plan_execute_s(plan, 1.f, p.a.data(), /*lda=*/3,
                                  p.b.data(), p.b.ld(), 0.f, p.c.data(),
                                  p.c.ld()),
            2);
  EXPECT_EQ(shalom_plan_execute_s(plan, 1.f, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), 0.f, p.c.data(),
                                  /*ldc=*/2),
            2);

  // The plan must survive failed executes and still work.
  EXPECT_EQ(shalom_plan_execute_s(plan, 1.f, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), 0.f, p.c.data(),
                                  p.c.ld()),
            0);
  shalom_plan_destroy(plan);
  p.run_reference(1.f, 0.f);
  p.expect_matches("plan after failed executes");
}

TEST(CApi, PlanDestroyNullIsSafe) { shalom_plan_destroy(nullptr); }

TEST(CApi, StrerrorCoversEveryCode) {
  // Every enumerator, by name: a new status code added to common/error.h
  // without a row here (and a distinct status_string) fails to compile
  // via the static_assert below.
  struct StatusRow {
    int code;
    const char* name;
  };
  static constexpr StatusRow kCodes[] = {
      {SHALOM_OK, "SHALOM_OK"},
      {SHALOM_ERR_BAD_FLAG, "SHALOM_ERR_BAD_FLAG"},
      {SHALOM_ERR_INVALID_ARGUMENT, "SHALOM_ERR_INVALID_ARGUMENT"},
      {SHALOM_ERR_NULL_POINTER, "SHALOM_ERR_NULL_POINTER"},
      {SHALOM_ERR_DTYPE_MISMATCH, "SHALOM_ERR_DTYPE_MISMATCH"},
      {SHALOM_ERR_ALLOC, "SHALOM_ERR_ALLOC"},
      {SHALOM_ERR_INTERNAL, "SHALOM_ERR_INTERNAL"},
      {SHALOM_ERR_NUMERIC, "SHALOM_ERR_NUMERIC"},
      {SHALOM_ERR_KERNEL_TRAP, "SHALOM_ERR_KERNEL_TRAP"},
      {SHALOM_ERR_CORRUPTION, "SHALOM_ERR_CORRUPTION"},
      {SHALOM_ERR_REJECTED, "SHALOM_ERR_REJECTED"},
      {SHALOM_ERR_TIMEOUT, "SHALOM_ERR_TIMEOUT"},
      {SHALOM_DEGRADED, "SHALOM_DEGRADED"},
      {SHALOM_ERR_TABLE, "SHALOM_ERR_TABLE"},
  };
  constexpr std::size_t kCodeCount = sizeof(kCodes) / sizeof(kCodes[0]);
  static_assert(kCodeCount == static_cast<std::size_t>(SHALOM_ERR_TABLE) + 1,
                "status table out of sync with the shalom_status enum: add "
                "the new code's row (codes are dense and append-only)");

  EXPECT_STREQ(shalom_strerror(SHALOM_OK), "success");
  std::set<std::string> seen;
  for (const StatusRow& row : kCodes) {
    const char* msg = shalom_strerror(row.code);
    ASSERT_NE(msg, nullptr) << row.name;
    EXPECT_GT(std::strlen(msg), 0u) << row.name;
    EXPECT_STRNE(msg, "unknown status code") << row.name;
    EXPECT_TRUE(seen.insert(msg).second)
        << row.name << " shares its description with another status code: "
        << msg;
  }
  // Out-of-range codes get the sentinel, never NULL or a crash.
  EXPECT_STREQ(shalom_strerror(-1), "unknown status code");
  EXPECT_STREQ(shalom_strerror(999), "unknown status code");
}

TEST(CApi, LastErrorMessageTracksFailures) {
  float x[4] = {};
  // A failing call records a nonempty, code-consistent detail message.
  ASSERT_EQ(shalom_sgemm('X', 'N', 2, 2, 2, 1.f, x, 2, x, 2, 0.f, x, 2, 1),
            SHALOM_ERR_BAD_FLAG);
  EXPECT_GT(std::strlen(shalom_last_error_message()), 0u);

  // An argument error carries the validator's formatted context.
  ASSERT_EQ(shalom_sgemm('N', 'N', 2, 2, 2, 1.f, x, /*lda=*/1, x, 2, 0.f, x,
                         2, 1),
            SHALOM_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::strstr(shalom_last_error_message(), "lda"), nullptr)
      << "got: " << shalom_last_error_message();

  // A successful call clears the slot.
  testing::Problem<float> p({Trans::N, Trans::N}, 4, 4, 4);
  ASSERT_EQ(shalom_sgemm('N', 'N', 4, 4, 4, 1.f, p.a.data(), p.a.ld(),
                         p.b.data(), p.b.ld(), 0.f, p.c.data(), p.c.ld(), 1),
            SHALOM_OK);
  EXPECT_STREQ(shalom_last_error_message(), "");
}

// ---------------------------------------------------------------------------
// Asynchronous stream/future API
// ---------------------------------------------------------------------------

TEST(CApiAsync, SubmitWaitMatchesOracle) {
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  ASSERT_NE(stream, nullptr);

  testing::Problem<float> pf({Trans::N, Trans::N}, 19, 27, 14);
  testing::Problem<double> pd({Trans::T, Trans::T}, 12, 8, 31);

  shalom_future* ff = nullptr;
  shalom_future* fd = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 19, 27, 14, 1.5f, pf.a.data(),
                            pf.a.ld(), pf.b.data(), pf.b.ld(), 0.25f,
                            pf.c.data(), pf.c.ld(), &ff),
            0);
  ASSERT_EQ(shalom_submit_d(stream, 't', 't', 12, 8, 31, -1.0, pd.a.data(),
                            pd.a.ld(), pd.b.data(), pd.b.ld(), 0.5,
                            pd.c.data(), pd.c.ld(), &fd),
            0);
  ASSERT_NE(ff, nullptr);
  ASSERT_NE(fd, nullptr);

  EXPECT_EQ(shalom_wait(ff), 0);
  EXPECT_EQ(shalom_wait(fd), 0);
  EXPECT_NE(shalom_future_done(ff), 0);

  pf.run_reference(1.5f, 0.25f);
  pf.expect_matches("shalom_submit_s");
  pd.run_reference(-1.0, 0.5);
  pd.expect_matches("shalom_submit_d");

  shalom_future_destroy(ff);
  shalom_future_destroy(fd);
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, WaitTwiceReturnsSameStatus) {
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  testing::Problem<float> p({Trans::N, Trans::N}, 10, 10, 10);
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 10, 10, 10, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            0);
  EXPECT_EQ(shalom_wait(f), 0);
  EXPECT_EQ(shalom_wait(f), 0) << "wait must be idempotent";
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, DestroyFutureBeforeWaitIsSafe) {
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 24, 12);

  // Dropping the future does not cancel the request (buffers stay owned
  // here until the flush below rendezvouses with its execution).
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 16, 24, 12, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            0);
  shalom_future_destroy(f);

  // Fire-and-forget submission: no future at all.
  testing::Problem<float> q({Trans::N, Trans::T}, 9, 13, 17);
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'T', 9, 13, 17, 1.f, q.a.data(),
                            q.a.ld(), q.b.data(), q.b.ld(), 0.f, q.c.data(),
                            q.c.ld(), nullptr),
            0);

  EXPECT_EQ(shalom_stream_flush(stream), 0);
  p.run_reference(1.f, 0.f);
  p.expect_matches("future destroyed before wait");
  q.run_reference(1.f, 0.f);
  q.expect_matches("fire and forget");
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, ErrorPaths) {
  // Null handles everywhere.
  EXPECT_EQ(shalom_stream_create(nullptr, 1), 3);
  EXPECT_EQ(shalom_stream_flush(nullptr), 3);
  EXPECT_EQ(shalom_wait(nullptr), 3);
  EXPECT_EQ(shalom_future_done(nullptr), 0);
  shalom_stream_destroy(nullptr);  // documented as safe
  shalom_future_destroy(nullptr);

  float x[16] = {};
  shalom_future* f = reinterpret_cast<shalom_future*>(&x);  // sentinel
  EXPECT_EQ(shalom_submit_s(nullptr, 'N', 'N', 2, 2, 2, 1.f, x, 2, x, 2,
                            0.f, x, 2, &f),
            3);
  EXPECT_EQ(f, nullptr) << "out_future must be cleared on failure";

  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  // Bad transpose flag, then bad stride: both fail on the submitting
  // thread, never producing a future.
  f = reinterpret_cast<shalom_future*>(&x);
  EXPECT_EQ(shalom_submit_s(stream, 'Q', 'N', 2, 2, 2, 1.f, x, 2, x, 2,
                            0.f, x, 2, &f),
            1);
  EXPECT_EQ(f, nullptr);
  EXPECT_EQ(shalom_submit_s(stream, 'N', 'N', 2, 2, 2, 1.f, x, /*lda=*/1, x,
                            2, 0.f, x, 2, &f),
            2);
  EXPECT_GT(std::strlen(shalom_last_error_message()), 0u);
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, SubmitQueueFaultReturnsAllocError) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);

  // every-1, not kOnce: a single transient fault would be absorbed by the
  // submit retry budget; only a persistent one surfaces to the caller.
  fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 1);
  shalom_future* f = nullptr;
  EXPECT_EQ(shalom_submit_s(stream, 'N', 'N', 8, 8, 8, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            SHALOM_ERR_ALLOC);
  fault::disarm_all();
  EXPECT_EQ(f, nullptr);
  EXPECT_GT(std::strlen(shalom_last_error_message()), 0u);

  // Nothing was queued; the stream keeps serving.
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 8, 8, 8, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            0);
  EXPECT_EQ(shalom_wait(f), 0);
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
  p.run_reference(1.f, 0.f);
  p.expect_matches("submit after rejected submit");
}

TEST(CApiAsync, SubmitAfterDegradedPoolStillExecutes) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  // Degrade the global pool for real: wedge one worker at pickup and let
  // a watchdog-armed parallel GEMM trip and recover. Later stream
  // batches then run on the degraded pool (narrowed to serial) and must
  // still complete with correct results.
  guard::set_watchdog_ms_for_testing(100);
  testing::Problem<float> warm({Trans::N, Trans::N}, 96, 120, 40);
  fault::arm(fault::Site::kThreadpoolHeartbeat, fault::Mode::kOnce);
  ASSERT_EQ(shalom_sgemm('N', 'N', 96, 120, 40, 1.f, warm.a.data(),
                         warm.a.ld(), warm.b.data(), warm.b.ld(), 0.f,
                         warm.c.data(), warm.c.ld(), 3),
            0);
  fault::disarm_all();
  guard::set_watchdog_ms_for_testing(-1);
  EXPECT_GE(robustness_stats().watchdog_trips, 1u)
      << "the warm-up round was supposed to trip the watchdog";

  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 3), 0);
  testing::Problem<float> p({Trans::N, Trans::T}, 40, 60, 30);
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'T', 40, 60, 30, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            0);
  EXPECT_EQ(shalom_wait(f), 0);
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
  p.run_reference(1.f, 0.f);
  p.expect_matches("stream on degraded pool");
}

TEST(CApiAsync, WaitForBoundsTheWait) {
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  testing::Problem<float> p({Trans::N, Trans::N}, 192, 192, 192);
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 192, 192, 192, 1.f,
                            p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.f,
                            p.c.data(), p.c.ld(), &f),
            0);
  // A zero-budget wait returns immediately: either the final status or
  // SHALOM_ERR_TIMEOUT with the future untouched and still waitable.
  const int rc = shalom_wait_for(f, 0);
  EXPECT_TRUE(rc == SHALOM_OK || rc == SHALOM_ERR_TIMEOUT) << rc;
  EXPECT_EQ(shalom_wait(f), 0);
  EXPECT_EQ(shalom_wait_for(f, 0), 0) << "resolved future returns instantly";
  p.run_reference(1.f, 0.f);
  p.expect_matches("wait_for then wait");

  EXPECT_EQ(shalom_wait_for(nullptr, 10), SHALOM_ERR_NULL_POINTER);
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, CancelResolvesQueuedFutureExactlyOnce) {
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  // A large request keeps the drainer busy so the small one stays queued
  // long enough for the cancel to usually win; the test accepts either
  // outcome of the race, but never a half-resolved future.
  testing::Problem<float> busy({Trans::N, Trans::N}, 192, 192, 192);
  testing::Problem<float> p({Trans::N, Trans::N}, 12, 12, 12);
  const Matrix<float> pristine = p.c;
  shalom_future* fb = nullptr;
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 192, 192, 192, 1.f,
                            busy.a.data(), busy.a.ld(), busy.b.data(),
                            busy.b.ld(), 0.f, busy.c.data(), busy.c.ld(),
                            &fb),
            0);
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 12, 12, 12, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            0);
  // Both requests went through admission, so the global high-water mark
  // of queued depth has seen at least this stream's backlog.
  shalom_stats mid;
  shalom_get_stats(&mid);
  EXPECT_GE(mid.stream_queue_peak, 1u)
      << "two queued submissions must register in stream_queue_peak";
  const int cancelled = shalom_future_cancel(f);
  EXPECT_TRUE(cancelled == 0 || cancelled == 1);
  EXPECT_EQ(shalom_wait(fb), 0);
  if (cancelled == 1) {
    EXPECT_EQ(shalom_wait(f), SHALOM_ERR_REJECTED);
    shalom_stats after;
    shalom_get_stats(&after);
    EXPECT_GT(after.requests_cancelled, mid.requests_cancelled)
        << "a won cancel race must count in requests_cancelled";
    for (index_t i = 0; i < p.m; ++i)
      for (index_t j = 0; j < p.n; ++j)
        ASSERT_EQ(std::memcmp(&p.c(i, j), &pristine(i, j), sizeof(float)), 0)
            << "a cancelled request must never write to C";
  } else {
    EXPECT_EQ(shalom_wait(f), 0);
    p.run_reference(1.f, 0.f);
    p.expect_matches("cancel lost the race");
  }
  // Whatever happened, the future is now resolved: cancel always loses.
  EXPECT_EQ(shalom_future_cancel(f), 0);
  EXPECT_EQ(shalom_future_cancel(nullptr), 0);
  shalom_future_destroy(fb);
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, TimedSubmitCarriesDeadline) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  testing::Problem<float> p({Trans::N, Trans::N}, 10, 10, 10);
  const Matrix<float> pristine = p.c;

  // engine.deadline expires the swept request deterministically.
  fault::arm(fault::Site::kEngineDeadline, fault::Mode::kEveryN, 1);
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_timed_s(stream, 'N', 'N', 10, 10, 10, 1.f,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.f, p.c.data(), p.c.ld(),
                                  /*deadline_ms=*/1000, &f),
            0);
  EXPECT_EQ(shalom_wait(f), SHALOM_ERR_TIMEOUT);
  fault::disarm_all();
  EXPECT_GT(std::strlen(shalom_last_error_message()), 0u);
  for (index_t i = 0; i < p.m; ++i)
    for (index_t j = 0; j < p.n; ++j)
      ASSERT_EQ(std::memcmp(&p.c(i, j), &pristine(i, j), sizeof(float)), 0)
          << "an expired request must never write to C";
  shalom_future_destroy(f);

  // Without the fault, a generous deadline executes normally.
  ASSERT_EQ(shalom_submit_timed_s(stream, 'N', 'N', 10, 10, 10, 1.f,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.f, p.c.data(), p.c.ld(),
                                  /*deadline_ms=*/10000, &f),
            0);
  EXPECT_EQ(shalom_wait(f), 0);
  p.run_reference(1.f, 0.f);
  p.expect_matches("timed submit within deadline");
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
}

TEST(CApiAsync, StreamHealthAndBoundedFlush) {
  EXPECT_EQ(shalom_stream_health(nullptr), -1);
  EXPECT_EQ(shalom_stream_flush_for(nullptr, 10), SHALOM_ERR_NULL_POINTER);

  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  EXPECT_EQ(shalom_stream_health(stream), SHALOM_STREAM_HEALTH_OK);
  EXPECT_EQ(shalom_stream_flush_for(stream, 50), 0)
      << "an idle stream drains instantly";

  testing::Problem<float> busy({Trans::N, Trans::N}, 192, 192, 192);
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 192, 192, 192, 1.f,
                            busy.a.data(), busy.a.ld(), busy.b.data(),
                            busy.b.ld(), 0.f, busy.c.data(), busy.c.ld(),
                            nullptr),
            0);
  const int rc = shalom_stream_flush_for(stream, 0);
  EXPECT_TRUE(rc == SHALOM_OK || rc == SHALOM_ERR_TIMEOUT) << rc;
  EXPECT_EQ(shalom_stream_flush(stream), 0)
      << "a timed-out flush is re-waitable";
  shalom_stream_destroy(stream);
}

// Satellite regression: a stream whose drainer could not be spawned keeps
// serving correct results synchronously, but flush reports the distinct
// SHALOM_DEGRADED status (not plain success) so callers can re-route.
TEST(CApiAsync, FlushReportsDegradedAfterSpawnFailure) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kEveryN, 1);
  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  fault::disarm_all();
  ASSERT_NE(stream, nullptr);

  EXPECT_EQ(shalom_stream_health(stream), SHALOM_STREAM_HEALTH_DEGRADED);
  testing::Problem<float> p({Trans::N, Trans::N}, 14, 14, 14);
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_s(stream, 'N', 'N', 14, 14, 14, 1.f, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                            p.c.ld(), &f),
            0);
  // SHALOM_DEGRADED is a non-error status: the wait reports the degraded
  // path without poisoning the thread's last-error slot semantics.
  EXPECT_EQ(shalom_wait(f), SHALOM_DEGRADED);
  p.run_reference(1.f, 0.f);
  p.expect_matches("degraded stream still computes correctly");
  EXPECT_EQ(shalom_stream_flush(stream), SHALOM_DEGRADED);
  EXPECT_EQ(shalom_stream_flush_for(stream, 50), SHALOM_DEGRADED);
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);
}

TEST(CApi, StatsExposeAdmissionCounters) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  shalom_stats before;
  shalom_get_stats(&before);

  shalom_stream* stream = nullptr;
  ASSERT_EQ(shalom_stream_create(&stream, 1), 0);
  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  fault::arm(fault::Site::kEngineDeadline, fault::Mode::kOnce);
  shalom_future* f = nullptr;
  ASSERT_EQ(shalom_submit_timed_s(stream, 'N', 'N', 8, 8, 8, 1.f,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.f, p.c.data(), p.c.ld(),
                                  /*deadline_ms=*/1000, &f),
            0);
  EXPECT_EQ(shalom_wait(f), SHALOM_ERR_TIMEOUT);
  fault::disarm_all();
  shalom_future_destroy(f);
  shalom_stream_destroy(stream);

  shalom_stats after;
  shalom_get_stats(&after);
  EXPECT_GT(after.requests_expired, before.requests_expired);
}

TEST(CApi, OverflowingShapesRejected) {
  // M*K, K*N and M*N products past PTRDIFF_MAX elements must come back as
  // SHALOM_ERR_INVALID_ARGUMENT from validation - never reach allocation
  // sizing where they would wrap. Pointers are non-null but never
  // dereferenced: validation fails first.
  float x[4] = {};
  const ptrdiff_t huge = std::numeric_limits<ptrdiff_t>::max() / 4;
  EXPECT_EQ(shalom_sgemm('N', 'N', huge, 2, huge, 1.f, x, huge, x, 2, 0.f,
                         x, 2, 1),
            SHALOM_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(shalom_sgemm('N', 'N', 2, huge, huge, 1.f, x, huge, x, huge,
                         0.f, x, huge, 1),
            SHALOM_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(shalom_sgemm('N', 'N', huge, huge, 2, 1.f, x, 2, x, huge, 0.f,
                         x, huge, 1),
            SHALOM_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::strstr(shalom_last_error_message(), "overflow"), nullptr)
      << "got: " << shalom_last_error_message();

  shalom_plan* plan = nullptr;
  EXPECT_EQ(shalom_plan_create(&plan, 'd', 'N', 'N', huge, huge, 2, 1),
            SHALOM_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(plan, nullptr);
}

// Table-driven precedence check for the stream-health surface: when
// several conditions hold at once the documented order is
// DRAINING > DEGRADED > RECOVERING > SHEDDING > OK, and the C constants
// must match the C++ engine enum value for value. Each scenario builds a
// stream holding a *combination* of conditions and asserts which one
// wins.
TEST(CApiAsync, StreamHealthPrecedenceTable) {
  if (!SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
  if (health::env_recovery_ms() > 2000)
    GTEST_SKIP() << "SHALOM_RECOVERY_MS too large to sleep out";

  // Latches `s`'s breaker (requires breaker_threshold=1, retry_budget=0).
  const auto latch = [](engine::GemmStream& s) {
    testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 16);
    fault::arm(fault::Site::kSubmitQueue, fault::Mode::kEveryN, 1);
    EXPECT_THROW(s.submit<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(),
                                 p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                                 p.c.data(), p.c.ld()),
                 std::bad_alloc);
    fault::disarm_all();
  };

  struct Row {
    const char* conditions;
    int expected;  // shalom_stream_health_state constant
    std::function<int()> run;  // builds the scenario, returns health()
  };
  const std::vector<Row> table = {
      {"fresh stream", SHALOM_STREAM_HEALTH_OK,
       [] {
         engine::GemmStream s;
         return static_cast<int>(s.health());
       }},
      {"queue at capacity", SHALOM_STREAM_HEALTH_SHEDDING,
       [] {
         engine::StreamOptions opts;
         opts.queue_cap = 1;
         opts.overload_policy =
             static_cast<int>(engine::OverloadPolicy::kShedNewest);
         // The submit -> health window is microseconds against a
         // millisecond-scale drain; retry a few times in case the
         // drainer claims the request first.
         for (int attempt = 0; attempt < 50; ++attempt) {
           // Operands outlive the stream: its destructor drains the
           // still-queued request, which writes into these matrices.
           testing::Problem<float> busy({Trans::N, Trans::N}, 160, 160,
                                        160);
           engine::GemmStream s(opts);
           (void)s.submit<float>(busy.mode, busy.m, busy.n, busy.k, 1.0f,
                                 busy.a.data(), busy.a.ld(),
                                 busy.b.data(), busy.b.ld(), 0.0f,
                                 busy.c.data(), busy.c.ld());
           const engine::StreamHealth h = s.health();
           if (h == engine::StreamHealth::kShedding)
             return static_cast<int>(h);
         }
         return -1;
       }},
      {"breaker latched beats queue state", SHALOM_STREAM_HEALTH_DEGRADED,
       [&latch] {
         engine::StreamOptions opts;
         opts.retry_budget = 0;
         opts.breaker_threshold = 1;
         opts.queue_cap = 1;
         engine::GemmStream s(opts);
         latch(s);
         return static_cast<int>(s.health());
       }},
      {"half-open trial beats shedding", SHALOM_STREAM_HEALTH_RECOVERING,
       [&latch] {
         if (!health::recovery_enabled() ||
             health::env_probation_n() < 2)
           return static_cast<int>(
               SHALOM_STREAM_HEALTH_RECOVERING);  // vacuous under =0
         engine::StreamOptions opts;
         opts.retry_budget = 0;
         opts.breaker_threshold = 1;
         opts.queue_cap = 1;  // the trial itself puts the queue at cap
         engine::GemmStream s(opts);
         latch(s);
         std::this_thread::sleep_for(
             std::chrono::milliseconds(health::env_recovery_ms() + 150));
         testing::Problem<float> p({Trans::N, Trans::N}, 20, 20, 20);
         (void)s.submit<float>(p.mode, p.m, p.n, p.k, 1.0f, p.a.data(),
                               p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                               p.c.data(), p.c.ld());
         const int h = static_cast<int>(s.health());
         (void)s.flush();
         return h;
       }},
      {"draining beats a latched breaker", SHALOM_STREAM_HEALTH_DRAINING,
       [&latch] {
         engine::StreamOptions opts;
         opts.retry_budget = 0;
         opts.breaker_threshold = 1;
         engine::GemmStream s(opts);
         latch(s);
         EXPECT_EQ(s.close(), SHALOM_DEGRADED);
         return static_cast<int>(s.health());
       }},
  };

  for (const Row& row : table) {
    fault::disarm_all();
    health::reset_for_testing();
    EXPECT_EQ(row.run(), row.expected) << row.conditions;
  }
  fault::disarm_all();
  health::reset_for_testing();

  // The C constants and the C++ enum are the same numbering end to end.
  EXPECT_EQ(static_cast<int>(engine::StreamHealth::kOk),
            SHALOM_STREAM_HEALTH_OK);
  EXPECT_EQ(static_cast<int>(engine::StreamHealth::kDegraded),
            SHALOM_STREAM_HEALTH_DEGRADED);
  EXPECT_EQ(static_cast<int>(engine::StreamHealth::kShedding),
            SHALOM_STREAM_HEALTH_SHEDDING);
  EXPECT_EQ(static_cast<int>(engine::StreamHealth::kDraining),
            SHALOM_STREAM_HEALTH_DRAINING);
  EXPECT_EQ(static_cast<int>(engine::StreamHealth::kRecovering),
            SHALOM_STREAM_HEALTH_RECOVERING);
}

}  // namespace
}  // namespace shalom
