// Tests for the C API: happy path against the oracle, transpose-flag
// parsing, error codes and thread handling.
#include <gtest/gtest.h>

#include "core/shalom_c.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

TEST(CApi, SgemmMatchesOracle) {
  testing::Problem<float> p({Trans::N, Trans::N}, 17, 23, 13);
  const int rc = shalom_sgemm('N', 'N', 17, 23, 13, 1.5f, p.a.data(),
                              p.a.ld(), p.b.data(), p.b.ld(), 0.25f,
                              p.c.data(), p.c.ld(), 1);
  EXPECT_EQ(rc, 0);
  p.run_reference(1.5f, 0.25f);
  p.expect_matches("shalom_sgemm");
}

TEST(CApi, DgemmTransposedLowercase) {
  testing::Problem<double> p({Trans::T, Trans::T}, 11, 9, 21);
  const int rc = shalom_dgemm('t', 't', 11, 9, 21, 1.0, p.a.data(),
                              p.a.ld(), p.b.data(), p.b.ld(), 0.0,
                              p.c.data(), p.c.ld(), 1);
  EXPECT_EQ(rc, 0);
  p.run_reference(1.0, 0.0);
  p.expect_matches("shalom_dgemm");
}

TEST(CApi, InvalidTransFlag) {
  float x[4] = {};
  EXPECT_EQ(shalom_sgemm('X', 'N', 2, 2, 2, 1.f, x, 2, x, 2, 0.f, x, 2, 1),
            1);
}

TEST(CApi, InvalidDimensionsReturnError) {
  float x[4] = {};
  EXPECT_EQ(shalom_sgemm('N', 'N', 2, 2, 2, 1.f, x, /*lda=*/1, x, 2, 0.f,
                         x, 2, 1),
            2);
  EXPECT_EQ(shalom_sgemm('N', 'N', -3, 2, 2, 1.f, x, 2, x, 2, 0.f, x, 2, 1),
            2);
}

TEST(CApi, MultiThreaded) {
  testing::Problem<float> p({Trans::N, Trans::T}, 30, 500, 120);
  const int rc = shalom_sgemm('N', 'T', 30, 500, 120, 1.f, p.a.data(),
                              p.a.ld(), p.b.data(), p.b.ld(), 0.f,
                              p.c.data(), p.c.ld(), 4);
  EXPECT_EQ(rc, 0);
  p.run_reference(1.f, 0.f);
  p.expect_matches("shalom_sgemm threads=4");
}

}  // namespace
}  // namespace shalom
