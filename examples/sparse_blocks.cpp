// Block-sparse matrix product (CP2K/DBCSR pattern; paper Section 10
// future work).
//
// Electronic-structure codes keep their density/overlap matrices
// block-sparse: most block pairs never interact, and the nonzero blocks
// are the small dense tiles (5x5 ... 23x23) the paper's Fig. 14 measures.
// This example multiplies a block-sparse matrix by a dense panel using
// one LibShalom small GEMM per block, and compares against densifying the
// matrix first: at realistic occupations the sparse sweep wins by roughly
// the inverse of the density.
#include <cstdio>

#include "bench_util/runner.h"
#include "common/rng.h"
#include "core/shalom.h"
#include "sparse/spmm.h"

int main() {
  using namespace shalom;

  const index_t block_rows = 96, block_cols = 96;
  const index_t bs = 23;  // CP2K's classic block size
  const index_t n = 256;  // dense panel width

  std::printf("block-sparse A: %ld x %ld blocks of %ldx%ld, dense B panel "
              "width %ld\n\n",
              static_cast<long>(block_rows), static_cast<long>(block_cols),
              static_cast<long>(bs), static_cast<long>(bs),
              static_cast<long>(n));
  std::printf("%-10s %14s %16s %10s\n", "density", "spmm (ms)",
              "dense gemm (ms)", "speedup");

  for (double density : {0.02, 0.05, 0.1, 0.25, 0.5}) {
    auto a =
        sparse::BsrMatrix<float>::random(block_rows, block_cols, bs, bs,
                                         density, 11);
    Matrix<float> b(a.cols(), n), c(a.rows(), n);
    fill_random(b, 3);

    Config cfg;
    cfg.threads = 0;
    const auto t_sparse = bench::time_kernel(
        [&] {
          sparse::spmm(1.0f, a, b.data(), b.ld(), 0.0f, c.data(), c.ld(),
                       n, cfg);
        },
        3, true);

    const Matrix<float> dense = a.to_dense();
    Matrix<float> c_dense(a.rows(), n);
    const auto t_dense = bench::time_kernel(
        [&] {
          gemm(Trans::N, Trans::N, a.rows(), n, a.cols(), 1.0f,
               dense.data(), dense.ld(), b.data(), b.ld(), 0.0f,
               c_dense.data(), c_dense.ld(), cfg);
        },
        3, true);

    // Spot-check agreement.
    double max_err = 0;
    for (index_t i = 0; i < a.rows(); i += 37)
      for (index_t j = 0; j < n; j += 17)
        max_err = std::max(max_err, static_cast<double>(std::abs(
                                        c(i, j) - c_dense(i, j))));

    std::printf("%-10.2f %11.2f %16.2f %9.1fx  (max err %.1e)\n", density,
                t_sparse.geomean_s * 1e3, t_dense.geomean_s * 1e3,
                t_dense.geomean_s / t_sparse.geomean_s, max_err);
  }
  return 0;
}
