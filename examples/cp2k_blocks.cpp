// CP2K-style batched small GEMM (paper Section 8.6, Fig. 14).
//
// Molecular dynamics packages like CP2K decompose their sparse matrices
// into thousands of small dense blocks (5x5, 13x13, 23x23...) and spend
// most of their time multiplying them. Parallelism comes from running
// many independent block products, NOT from parallelizing one product -
// the standard pattern for small GEMM (paper Section 7.4). This example
// simulates one SCF-iteration-like pass: a batch of FP64 block products
// C_i += A_i . B_i, timed against the naive triple loop.
#include <cstdio>
#include <vector>

#include "baselines/naive.h"
#include "bench_util/runner.h"
#include "bench_util/stats.h"
#include "common/rng.h"
#include "core/shalom.h"
#include "workloads/sizes.h"

int main() {
  using namespace shalom;

  struct Batch {
    workloads::GemmShape shape;
    std::vector<Matrix<double>> a, b, c;
  };

  constexpr int kBlocksPerShape = 256;
  std::vector<Batch> batches;
  for (const auto& shape : workloads::cp2k_sizes()) {
    Batch batch;
    batch.shape = shape;
    for (int i = 0; i < kBlocksPerShape; ++i) {
      batch.a.emplace_back(shape.m, shape.k);
      batch.b.emplace_back(shape.k, shape.n);
      batch.c.emplace_back(shape.m, shape.n);
      fill_random(batch.a.back(), 100 + i);
      fill_random(batch.b.back(), 200 + i);
    }
    batches.push_back(std::move(batch));
  }

  std::printf("CP2K-style batched FP64 block products "
              "(%d blocks per shape)\n\n",
              kBlocksPerShape);
  std::printf("%-12s %14s %14s %8s\n", "block", "LibShalom", "naive",
              "speedup");

  for (auto& batch : batches) {
    const auto& s = batch.shape;
    auto run_batch = [&](auto&& one) {
      for (int i = 0; i < kBlocksPerShape; ++i)
        one(batch.a[i], batch.b[i], batch.c[i]);
    };

    const auto t_shalom = bench::time_kernel(
        [&] {
          run_batch([&](Matrix<double>& a, Matrix<double>& b,
                        Matrix<double>& c) {
            gemm(Trans::N, Trans::N, s.m, s.n, s.k, 1.0, a.data(), a.ld(),
                 b.data(), b.ld(), 1.0, c.data(), c.ld());
          });
        },
        5, true);
    const auto t_naive = bench::time_kernel(
        [&] {
          run_batch([&](Matrix<double>& a, Matrix<double>& b,
                        Matrix<double>& c) {
            baselines::naive_gemm({Trans::N, Trans::N}, s.m, s.n, s.k, 1.0,
                                  a.data(), a.ld(), b.data(), b.ld(), 1.0,
                                  c.data(), c.ld());
          });
        },
        5, true);

    const double flops =
        2.0 * s.m * s.n * s.k * kBlocksPerShape;
    std::printf("%-12s %10.2f GF/s %10.2f GF/s %7.1fx\n", s.label.c_str(),
                flops / t_shalom.geomean_s / 1e9,
                flops / t_naive.geomean_s / 1e9,
                t_naive.geomean_s / t_shalom.geomean_s);
  }
  return 0;
}
