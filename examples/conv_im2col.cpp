// CNN inference via im2col + irregular-shaped GEMM (paper Fig. 15
// workload).
//
// Runs one VGG16-style 3x3 convolution layer: lower the input image with
// im2col, multiply the weight matrix (C_out x C_in*9) by the lowered
// matrix (C_in*9 x P*Q) - a textbook tall-and-skinny GEMM with N >> M -
// and verify against direct convolution. This is the exact GEMM family
// (M = 64, N = 50176, K = 576 at full VGG size) the paper's irregular
// benchmarks target; the example uses a reduced image so it runs
// anywhere in about a second.
#include <cstdio>

#include "bench_util/runner.h"
#include "common/rng.h"
#include "core/shalom.h"
#include "workloads/im2col.h"

int main() {
  using namespace shalom;
  using workloads::ConvSpec;

  ConvSpec spec;
  spec.in_channels = 64;
  spec.out_channels = 64;
  spec.height = 56;  // VGG conv1.2 geometry at 1/4 spatial size
  spec.width = 56;

  const index_t M = spec.gemm_m(), N = spec.gemm_n(), K = spec.gemm_k();
  std::printf("conv %ldx%ld, %ld->%ld channels lowers to GEMM "
              "M=%ld N=%ld K=%ld (tall-and-skinny: N/M = %.0f)\n",
              static_cast<long>(spec.height), static_cast<long>(spec.width),
              static_cast<long>(spec.in_channels),
              static_cast<long>(spec.out_channels), static_cast<long>(M),
              static_cast<long>(N), static_cast<long>(K),
              static_cast<double>(N) / M);

  Matrix<float> image(spec.in_channels, spec.height * spec.width);
  Matrix<float> weights(M, K);
  fill_random(image, 1);
  fill_random(weights, 2);

  // Lower once (in a real inference engine this fuses with the previous
  // layer; im2col cost is reported separately here).
  Matrix<float> lowered(K, N);
  bench::Timer t_lower;
  workloads::im2col(spec, image.data(), lowered.data());
  std::printf("im2col: %.2f ms\n", t_lower.elapsed_s() * 1e3);

  Matrix<float> out(M, N);
  Config cfg;
  cfg.threads = 0;  // all cores
  const auto stats = bench::time_kernel(
      [&] {
        gemm(Trans::N, Trans::N, M, N, K, 1.0f, weights.data(),
             weights.ld(), lowered.data(), lowered.ld(), 0.0f, out.data(),
             out.ld(), cfg);
      },
      5, true);
  std::printf("conv GEMM: %.2f ms geomean (%.2f GFLOPS)\n",
              stats.geomean_s * 1e3,
              2.0 * M * N * K / stats.geomean_s / 1e9);

  // Verify against direct convolution.
  Matrix<float> expected(M, N);
  workloads::conv2d_reference(spec, image.data(), weights.data(),
                              expected.data());
  double max_err = 0;
  for (index_t i = 0; i < M; ++i)
    for (index_t j = 0; j < N; ++j)
      max_err = std::max(
          max_err, static_cast<double>(std::abs(out(i, j) - expected(i, j))));
  std::printf("max |gemm - direct conv| = %.2e %s\n", max_err,
              max_err < 1e-3 ? "(OK)" : "(MISMATCH!)");
  return max_err < 1e-3 ? 0 : 1;
}
