// Spectral-element operator application (Nek5000/NekBox-style workload,
// paper Section 1 and Fig. 7 motivation).
//
// High-order CFD codes apply the derivative operator D (p+1 x p+1) to
// every element's data cube via small GEMMs: for each element,
//   U_r = D  . U   (contraction over the first index)
//   U_s = U  . D^T (contraction over the second index)
// with p = 7 this is the 8x8x8 GEMM family the paper highlights as
// "widely used in scientific simulation algorithms". The example runs a
// 2-D spectral gradient over a mesh of elements and checks it against a
// scalar reference, then reports throughput.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util/runner.h"
#include "common/rng.h"
#include "core/shalom.h"

int main() {
  using namespace shalom;

  constexpr index_t kP = 8;          // nodes per direction (order 7)
  constexpr index_t kElements = 4096;

  // Derivative matrix: a plausible dense stencil (content irrelevant for
  // throughput; correctness is checked against the same D).
  Matrix<float> d(kP, kP);
  fill_random(d, 7);

  // Element data: each element is a kP x kP nodal grid.
  std::vector<Matrix<float>> u, ur, us;
  for (index_t e = 0; e < kElements; ++e) {
    u.emplace_back(kP, kP);
    ur.emplace_back(kP, kP);
    us.emplace_back(kP, kP);
    fill_random(u.back(), 1000 + e);
  }

  // One gradient sweep over the mesh: 2 small GEMMs per element.
  auto sweep = [&] {
    for (index_t e = 0; e < kElements; ++e) {
      // U_r = D . U  (8x8x8, NN)
      gemm(Trans::N, Trans::N, kP, kP, kP, 1.0f, d.data(), d.ld(),
           u[e].data(), u[e].ld(), 0.0f, ur[e].data(), ur[e].ld());
      // U_s = U . D^T (8x8x8, NT: the transposed operand stays in place)
      gemm(Trans::N, Trans::T, kP, kP, kP, 1.0f, u[e].data(), u[e].ld(),
           d.data(), d.ld(), 0.0f, us[e].data(), us[e].ld());
    }
  };

  const auto stats = bench::time_kernel(sweep, 10, true);
  const double flops = 2.0 * 2 * kP * kP * kP * kElements;
  std::printf("spectral gradient, %ld elements of %ldx%ld nodes: "
              "%.3f ms/sweep, %.2f GFLOPS\n",
              static_cast<long>(kElements), static_cast<long>(kP),
              static_cast<long>(kP), stats.geomean_s * 1e3,
              flops / stats.geomean_s / 1e9);

  // Verify one element against the scalar definition.
  double max_err = 0;
  for (index_t i = 0; i < kP; ++i) {
    for (index_t j = 0; j < kP; ++j) {
      float r = 0, s = 0;
      for (index_t k = 0; k < kP; ++k) {
        r += d(i, k) * u[0](k, j);
        s += u[0](i, k) * d(j, k);
      }
      max_err = std::max(max_err,
                         static_cast<double>(std::abs(ur[0](i, j) - r)));
      max_err = std::max(max_err,
                         static_cast<double>(std::abs(us[0](i, j) - s)));
    }
  }
  std::printf("max error vs scalar reference: %.2e %s\n", max_err,
              max_err < 1e-4 ? "(OK)" : "(MISMATCH!)");
  return max_err < 1e-4 ? 0 : 1;
}
