// Quickstart: the 60-second tour of the LibShalom API.
//
// Computes C = alpha * A.B + beta * C with the C++ API, shows the four
// transpose modes, the C API, and the Config knobs (threads, target
// machine, optimization toggles).
#include <cstdio>
#include <vector>

#include "core/shalom.h"
#include "core/shalom_c.h"

int main() {
  using namespace shalom;

  // --- 1. Plain single-precision GEMM, row-major ------------------------
  const index_t M = 6, N = 8, K = 4;
  std::vector<float> a(M * K), b(K * N), c(M * N, 0.f);
  for (index_t i = 0; i < M * K; ++i) a[i] = static_cast<float>(i % 5);
  for (index_t i = 0; i < K * N; ++i) b[i] = static_cast<float>(i % 3);

  gemm(Trans::N, Trans::N, M, N, K, /*alpha=*/1.0f, a.data(), /*lda=*/K,
       b.data(), /*ldb=*/N, /*beta=*/0.0f, c.data(), /*ldc=*/N);

  std::printf("C = A.B (%ld x %ld):\n", static_cast<long>(M),
              static_cast<long>(N));
  for (index_t i = 0; i < M; ++i) {
    for (index_t j = 0; j < N; ++j) std::printf("%6.1f", c[i * N + j]);
    std::printf("\n");
  }

  // --- 2. Transposed operands -------------------------------------------
  // C += A.B^T : B is stored N x K; pass Trans::T and its own leading
  // dimension. LibShalom's NT path packs B with the fused inner-product
  // kernel automatically.
  std::vector<float> bt(N * K);
  for (index_t j = 0; j < N; ++j)
    for (index_t k = 0; k < K; ++k) bt[j * K + k] = b[k * N + j];
  gemm(Trans::N, Trans::T, M, N, K, 1.0f, a.data(), K, bt.data(), K, 1.0f,
       c.data(), N);
  std::printf("\nafter C += A.B^T, C(0,0) = %.1f\n", c[0]);

  // --- 3. Configuration ---------------------------------------------------
  Config cfg;
  cfg.threads = 0;  // use every core (parallel driver, paper Section 6)
  gemm(Trans::N, Trans::N, M, N, K, 1.0f, a.data(), K, b.data(), N, 0.0f,
       c.data(), N, cfg);
  std::printf("parallel run done on all cores\n");

  // Target a specific machine model (affects blocking/packing decisions):
  static const arch::MachineDescriptor kp920 = arch::kunpeng_920();
  Config tuned;
  tuned.machine = &kp920;
  gemm(Trans::N, Trans::N, M, N, K, 1.0f, a.data(), K, b.data(), N, 0.0f,
       c.data(), N, tuned);
  std::printf("run with %s blocking parameters\n", kp920.name.c_str());

  // --- 4. C API ------------------------------------------------------------
  std::vector<double> da(M * K, 1.0), db(K * N, 2.0), dc(M * N, 0.0);
  const int rc = shalom_dgemm('N', 'N', M, N, K, 1.0, da.data(), K,
                              db.data(), N, 0.0, dc.data(), N,
                              /*threads=*/1);
  std::printf("shalom_dgemm rc=%d, dc(0,0)=%.1f (expect %.1f)\n", rc, dc[0],
              2.0 * K);
  return rc;
}
